#include "rpc/rpc.h"

#include <array>

namespace ordma::rpc {

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

sim::Task<Result<RpcReplyInfo>> RpcClient::call(net::NodeId server,
                                                std::uint16_t server_port,
                                                std::uint32_t proc,
                                                net::Buffer args,
                                                const Prepost* prepost,
                                                obs::OpId trace_op) {
  const auto& cm = host_.costs();
  const std::uint32_t xid = next_xid_++;

  co_await host_.cpu_consume(cm.rpc_client_issue, trace_op, "io/rpc_issue");
  if (prepost) {
    // Hand the tagged buffer descriptor to the NIC (§3.2).
    co_await host_.cpu_consume(cm.nic_prepost, trace_op, "io/register");
    host_.nic().prepost(xid, *prepost->as, prepost->va, prepost->len);
  }

  XdrEncoder enc;
  enc.u32(xid);
  enc.u32(kRpcCall);
  enc.u32(proc);
  enc.u32(static_cast<std::uint32_t>(trace_op));
  enc.raw(args.view());

  auto waiter = std::make_unique<Waiter>(host_.engine());
  auto* wp = waiter.get();
  waiting_.emplace(xid, std::move(waiter));

  co_await socket_.send_to(server, server_port, enc.finish(),
                           /*rddp_xid=*/0, /*rddp_data_offset=*/0,
                           /*rddp_data_len=*/0, /*gather_send=*/false,
                           trace_op);

  RpcReplyInfo info = co_await wp->done.wait();
  waiting_.erase(xid);
  if (prepost && !info.rddp_placed) host_.nic().cancel_prepost(xid);
  co_await host_.cpu_consume(cm.rpc_client_complete, trace_op,
                             "io/rpc_complete");
  co_return info;
}

sim::Task<void> RpcClient::rx_loop() {
  for (;;) {
    msg::UdpDatagram d = co_await socket_.recv();
    XdrDecoder dec(d.data);
    const std::uint32_t xid = dec.u32();
    const std::uint32_t type = dec.u32();
    const std::uint32_t status = dec.u32();
    if (!dec.ok() || type != kRpcReply) continue;
    auto it = waiting_.find(xid);
    if (it == waiting_.end()) continue;  // duplicate/late reply

    RpcReplyInfo info;
    info.status = status;
    info.results =
        d.data.slice(kRpcHeaderBytes, d.data.size() - kRpcHeaderBytes);
    info.rddp_placed = d.rddp_placed;
    info.rddp_data_len = d.rddp_data_len;
    it->second->done.set(std::move(info));
  }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

sim::Task<void> RpcServer::rx_loop() {
  for (;;) {
    msg::UdpDatagram d = co_await socket_.recv();
    // One logical nfsd thread per request; the host CPU serialises work.
    host_.engine().spawn(serve_one(std::move(d)));
  }
}

sim::Task<void> RpcServer::serve_one(msg::UdpDatagram d) {
  const auto& cm = host_.costs();
  XdrDecoder dec(d.data);
  const std::uint32_t xid = dec.u32();
  const std::uint32_t type = dec.u32();
  const std::uint32_t proc = dec.u32();
  const std::uint32_t trace = dec.u32();
  if (!dec.ok() || type != kRpcCall) co_return;

  co_await host_.cpu().consume_parts(
      trace, std::array<sim::Resource::Part, 2>{{
                 {cm.cpu_schedule, "io/sched"},
                 {cm.rpc_server_dispatch, "io/rpc_dispatch"},
             }});

  RpcCallCtx ctx;
  ctx.client = d.src;
  ctx.client_port = d.src_port;
  ctx.xid = xid;
  ctx.proc = proc;
  ctx.trace_op = trace;
  ctx.args = d.data.slice(kRpcHeaderBytes, d.data.size() - kRpcHeaderBytes);

  auto it = handlers_.find(proc);
  RpcServerReply reply;
  if (it == handlers_.end()) {
    reply.status = static_cast<std::uint32_t>(Errc::not_supported);
  } else {
    reply = co_await it->second(ctx);
  }
  ++served_;

  // Assemble the reply datagram: header | results | bulk.
  XdrEncoder enc;
  enc.u32(xid);
  enc.u32(kRpcReply);
  enc.u32(reply.status);
  enc.u32(trace);  // echo the caller's trace context
  const auto results_bytes = reply.results.take();
  enc.raw(results_bytes);
  const Bytes data_offset = kRpcHeaderBytes + results_bytes.size();
  const Bytes data_len = reply.bulk.size();
  enc.raw(reply.bulk.view());

  co_await socket_.send_to(d.src, d.src_port, enc.finish(),
                           /*rddp_xid=*/data_len > 0 ? xid : 0,
                           /*rddp_data_offset=*/data_offset,
                           /*rddp_data_len=*/data_len, reply.gather_send,
                           trace);
}

}  // namespace ordma::rpc
