#include "rpc/rpc.h"

#include <algorithm>
#include <array>
#include <vector>

#include "obs/sampler.h"

namespace ordma::rpc {

namespace {

std::uint32_t read_u32_at(std::span<const std::byte> v, Bytes off) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x = (x << 8) | std::to_integer<std::uint32_t>(v[off + i]);
  }
  return x;
}

void put_u32_at(std::span<std::byte> w, Bytes off, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    w[off + i] = static_cast<std::byte>((x >> (8 * (3 - i))) & 0xff);
  }
}

// Finish an encoded message whose cksum word was left zero: compute the
// end-to-end checksum over everything but the cksum field and stamp it in.
net::Buffer seal_message(XdrEncoder& enc) {
  net::Buffer b = enc.finish();
  auto w = b.mutable_view();
  std::uint32_t ck = checksum32(w.first(kRpcCksumOffset));
  ck = checksum32(w.subspan(kRpcHeaderBytes), ck);
  put_u32_at(w, kRpcCksumOffset, ck);
  return b;
}

}  // namespace

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

bool RpcClient::reply_checksum_ok(const RpcReplyInfo& info,
                                  const Prepost* prepost) {
  const auto v = info.raw.view();
  if (v.size() < kRpcHeaderBytes) return false;
  const std::uint32_t want = read_u32_at(v, kRpcCksumOffset);
  std::uint32_t ck = checksum32(v.first(kRpcCksumOffset));
  ck = checksum32(v.subspan(kRpcHeaderBytes), ck);
  if (info.rddp_placed && info.rddp_data_len > 0 && prepost && prepost->as) {
    // Bulk was header-split into the pre-posted buffer; continue the
    // checksum over the bytes that actually landed there.
    std::vector<std::byte> placed(
        std::min<Bytes>(info.rddp_data_len, prepost->len));
    if (!prepost->as->read(prepost->va, placed).ok()) return false;
    ck = checksum32(placed, ck);
  }
  return ck == want;
}

sim::Task<Result<RpcReplyInfo>> RpcClient::call(net::NodeId server,
                                                std::uint16_t server_port,
                                                std::uint32_t proc,
                                                net::Buffer args,
                                                const Prepost* prepost,
                                                obs::OpId trace_op) {
  const auto& cm = host_.costs();
  const std::uint32_t xid = next_xid_++;
  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::rpc_call,
                        xid, proc);

  co_await host_.cpu_consume(cm.rpc_client_issue, trace_op, "io/rpc_issue");
  if (prepost) {
    // Hand the tagged buffer descriptor to the NIC (§3.2).
    co_await host_.cpu_consume(cm.nic_prepost, trace_op, "io/register");
    host_.nic().prepost(xid, *prepost->as, prepost->va, prepost->len);
  }

  XdrEncoder enc;
  enc.u32(xid);
  enc.u32(kRpcCall);
  enc.u32(proc);
  enc.u32(static_cast<std::uint32_t>(trace_op));
  enc.u32(0);  // cksum, stamped by seal_message
  enc.raw(args.view());
  const net::Buffer msg = seal_message(enc);

  const bool wait_forever = retry_.timeout.ns <= 0;
  const unsigned max_attempts = std::max(1u, retry_.max_attempts);
  Duration timeout = retry_.timeout;
  Result<RpcReplyInfo> out = Errc::timed_out;
  for (unsigned attempt = 1;; ++attempt) {
    auto waiter = std::make_unique<Waiter>(host_.engine());
    auto* wp = waiter.get();
    waiting_[xid] = std::move(waiter);  // supersedes any prior attempt's

    co_await socket_.send_to(server, server_port, net::Buffer(msg),
                             /*rddp_xid=*/0, /*rddp_data_offset=*/0,
                             /*rddp_data_len=*/0, /*gather_send=*/false,
                             trace_op);

    const SimTime wait0 = host_.engine().now();
    std::optional<RpcReplyInfo> got;
    if (wait_forever) {
      got = co_await wp->done.wait();
    } else {
      got = co_await wp->done.wait_for(timeout);
    }
    // A reply that did not consume the prepost leaves it armed; disarm
    // before accepting so no late duplicate can scribble on the buffer
    // after we return.
    if (prepost && (!got || !got->rddp_placed)) {
      host_.nic().cancel_prepost(xid);
    }

    if (got) {
      if (reply_checksum_ok(*got, prepost)) {
        host_.flight().record(host_.engine().now().ns,
                              obs::flight::Ev::rpc_reply, xid, got->status);
        out = std::move(*got);
        break;
      }
      ++cksum_drops_;
      host_.flight().record(host_.engine().now().ns,
                            obs::flight::Ev::rpc_cksum_drop, xid);
      out = Errc::io_error;  // stands only if attempts are exhausted
    } else {
      ++timeouts_;
      host_.flight().record(host_.engine().now().ns,
                            obs::flight::Ev::rpc_timeout, xid, 0, attempt);
      // The whole timed-out wait is retransmit/backoff dead time: nothing
      // the op was charged for happened between the lost exchange and this
      // instant. The tail explainer blames it on `rpc_retransmit` (lower
      // priority than real work recorded inside the window, so live costs
      // of the lost attempt keep their own causes).
      obs::span(rpc_track_, trace_op, "io/rpc_retransmit", wait0,
                host_.engine().now());
      out = Errc::timed_out;
    }
    if (wait_forever || attempt >= max_attempts) {
      if (!out.ok()) {
        host_.flight().record(host_.engine().now().ns,
                              obs::flight::Ev::rpc_giveup, xid, 0, attempt);
      }
      break;
    }
    ++retransmits_;
    obs::note_op_retry(trace_op);
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::rpc_retransmit, xid, 0,
                          attempt + 1);
    if (prepost) {
      // Re-arm for the retransmission (consumed or disarmed above).
      host_.nic().prepost(xid, *prepost->as, prepost->va, prepost->len);
    }
    timeout = Duration{std::min<std::int64_t>(
        static_cast<std::int64_t>(static_cast<double>(timeout.ns) *
                                  retry_.backoff),
        retry_.max_timeout.ns)};
  }
  waiting_.erase(xid);
  co_await host_.cpu_consume(cm.rpc_client_complete, trace_op,
                             "io/rpc_complete");
  co_return out;
}

sim::Task<void> RpcClient::rx_loop() {
  for (;;) {
    msg::UdpDatagram d = co_await socket_.recv();
    XdrDecoder dec(d.data);
    const std::uint32_t xid = dec.u32();
    const std::uint32_t type = dec.u32();
    const std::uint32_t status = dec.u32();
    dec.u32();  // trace echo
    dec.u32();  // cksum — verified in call() against the raw bytes
    if (!dec.ok() || type != kRpcReply) continue;
    auto it = waiting_.find(xid);
    if (it == waiting_.end()) continue;       // duplicate/late reply
    if (it->second->done.is_set()) continue;  // duplicate within one attempt

    RpcReplyInfo info;
    info.status = status;
    info.results =
        d.data.slice(kRpcHeaderBytes, d.data.size() - kRpcHeaderBytes);
    info.raw = d.data;
    info.rddp_placed = d.rddp_placed;
    info.rddp_data_len = d.rddp_data_len;
    it->second->done.set(std::move(info));
  }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

sim::Task<void> RpcServer::rx_loop() {
  for (;;) {
    msg::UdpDatagram d = co_await socket_.recv();
    // One logical nfsd thread per request; the host CPU serialises work.
    host_.engine().spawn(serve_one(std::move(d)));
  }
}

void RpcServer::trim_reply_cache() {
  while (reply_cache_.size() > kReplyCacheCap && !reply_order_.empty()) {
    const ReplyKey k = reply_order_.front();
    reply_order_.pop_front();
    auto it = reply_cache_.find(k);
    if (it != reply_cache_.end() && !it->second.in_progress) {
      reply_cache_.erase(it);
    }
  }
}

sim::Task<void> RpcServer::serve_one(msg::UdpDatagram d) {
  const auto& cm = host_.costs();
  XdrDecoder dec(d.data);
  const std::uint32_t xid = dec.u32();
  const std::uint32_t type = dec.u32();
  const std::uint32_t proc = dec.u32();
  const std::uint32_t trace = dec.u32();
  const std::uint32_t cksum = dec.u32();
  if (!dec.ok() || type != kRpcCall) co_return;
  {
    const auto v = d.data.view();
    std::uint32_t ck = checksum32(v.first(kRpcCksumOffset));
    ck = checksum32(v.subspan(kRpcHeaderBytes), ck);
    if (ck != cksum) {
      // Corrupt request: drop it; the client's retransmission recovers.
      ++cksum_drops_;
      host_.flight().record(host_.engine().now().ns,
                            obs::flight::Ev::srv_cksum_drop, xid);
      co_return;
    }
  }

  const ReplyKey key{d.src, d.src_port, xid};
  if (auto it = reply_cache_.find(key); it != reply_cache_.end()) {
    if (it->second.in_progress) {
      // Original still executing; its reply will serve the retransmission.
      ++dup_drops_;
      host_.flight().record(host_.engine().now().ns,
                            obs::flight::Ev::srv_dup_drop, xid);
      co_return;
    }
    ++dup_replays_;
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::srv_dup_replay, xid);
    // Copy out: the iterator may be invalidated by inserts across awaits.
    ReplyEntry e = it->second;
    co_await host_.cpu().consume_parts(
        trace, std::array<sim::Resource::Part, 2>{{
                   {cm.cpu_schedule, "io/sched"},
                   {cm.rpc_server_dispatch, "io/rpc_dispatch"},
               }});
    co_await socket_.send_to(d.src, d.src_port, std::move(e.reply),
                             e.rddp_xid, e.data_offset, e.data_len,
                             e.gather_send, trace);
    co_return;
  }
  reply_cache_.emplace(key, ReplyEntry{});  // in-progress marker
  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::srv_serve,
                        xid, proc);

  co_await host_.cpu().consume_parts(
      trace, std::array<sim::Resource::Part, 2>{{
                 {cm.cpu_schedule, "io/sched"},
                 {cm.rpc_server_dispatch, "io/rpc_dispatch"},
             }});

  RpcCallCtx ctx;
  ctx.client = d.src;
  ctx.client_port = d.src_port;
  ctx.xid = xid;
  ctx.proc = proc;
  ctx.trace_op = trace;
  ctx.args = d.data.slice(kRpcHeaderBytes, d.data.size() - kRpcHeaderBytes);

  auto it = handlers_.find(proc);
  RpcServerReply reply;
  if (it == handlers_.end()) {
    reply.status = static_cast<std::uint32_t>(Errc::not_supported);
  } else {
    reply = co_await it->second(ctx);
  }
  ++served_;

  // Assemble the reply datagram: header | results | bulk.
  XdrEncoder enc;
  enc.u32(xid);
  enc.u32(kRpcReply);
  enc.u32(reply.status);
  enc.u32(trace);  // echo the caller's trace context
  enc.u32(0);      // cksum, stamped by seal_message
  const auto results_bytes = reply.results.take();
  enc.raw(results_bytes);
  const Bytes data_offset = kRpcHeaderBytes + results_bytes.size();
  const Bytes data_len = reply.bulk.size();
  enc.raw(reply.bulk.view());
  net::Buffer wire = seal_message(enc);
  const std::uint32_t rddp_xid = data_len > 0 ? xid : 0;

  // Record the sealed reply before sending so a duplicate arriving during
  // the send already replays instead of re-executing.
  if (wire.size() <= kMaxCachedReply) {
    ReplyEntry& e = reply_cache_[key];
    e.in_progress = false;
    e.reply = wire;
    e.rddp_xid = rddp_xid;
    e.data_offset = data_offset;
    e.data_len = data_len;
    e.gather_send = reply.gather_send;
    reply_order_.push_back(key);
    trim_reply_cache();
  } else {
    reply_cache_.erase(key);
  }

  co_await socket_.send_to(d.src, d.src_port, std::move(wire), rddp_xid,
                           data_offset, data_len, reply.gather_send, trace);
}

}  // namespace ordma::rpc
