// The client-throughput workload of Figures 3/4/7: sequential reads with
// application-level asynchronous read-ahead ("a simple client performing
// asynchronous read-ahead without any data processing", §5.1), implemented
// as a window of concurrent pread workers.
#pragma once

#include <string>

#include "core/file_client.h"
#include "host/host.h"
#include "sim/event.h"

namespace ordma::wl {

struct StreamConfig {
  Bytes block = KiB(64);   // application I/O block size
  unsigned window = 8;     // outstanding asynchronous reads
  Bytes limit = 0;         // 0 = whole file
  unsigned passes = 1;     // sequential passes over the file
  bool measure_last_pass_only = false;  // Fig. 7 measures the second pass
};

struct StreamResult {
  Bytes bytes = 0;
  Duration elapsed{};
  double throughput_MBps = 0.0;
  double client_cpu_util = 0.0;
};

sim::Task<Result<StreamResult>> stream_read(host::Host& host,
                                            core::FileClient& client,
                                            const std::string& path,
                                            StreamConfig cfg);

}  // namespace ordma::wl
