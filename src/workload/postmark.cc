#include "workload/postmark.h"

#include <algorithm>

namespace ordma::wl {

PostMark::PostMark(host::Host& host, core::FileClient& client,
                   PostMarkConfig cfg)
    : host_(host), client_(client), cfg_(cfg), rng_(cfg.seed) {}

sim::Task<Status> PostMark::setup() {
  io_buf_len_ = cfg_.max_size + cfg_.io_block;
  io_buf_ = host_.map_new(host_.user_as(), io_buf_len_);
  std::vector<std::byte> junk(cfg_.max_size);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::byte>(i * 131);
  }
  ORDMA_CHECK(host_.user_as().write(io_buf_, junk).ok());

  files_.reserve(cfg_.num_files);
  for (std::size_t i = 0; i < cfg_.num_files; ++i) {
    File f;
    f.name = "pm" + std::to_string(next_file_id_++);
    f.size = rng_.range(cfg_.min_size, cfg_.max_size);
    auto created = co_await client_.create(f.name);
    if (!created.ok()) co_return created.status();
    f.fh = created.value().fh;
    auto n = co_await client_.pwrite(f.fh, 0, io_buf_, f.size);
    if (!n.ok()) co_return n.status();
    files_.push_back(std::move(f));
  }
  co_return Status::Ok();
}

sim::Task<Status> PostMark::txn_read(File& f) {
  // open → read whole file in io_block units → close (§5.2).
  auto open = co_await client_.open(f.name);
  if (!open.ok()) co_return open.status();
  Bytes off = 0;
  while (off < f.size) {
    const Bytes chunk = std::min<Bytes>(cfg_.io_block, f.size - off);
    auto n = co_await client_.pread(open.value().fh, off, io_buf_, chunk);
    if (!n.ok()) co_return n.status();
    if (n.value() == 0) break;
    off += n.value();
  }
  stats_.bytes_read += off;
  ++stats_.reads;
  co_return co_await client_.close(open.value().fh);
}

sim::Task<Status> PostMark::txn_append(File& f) {
  auto open = co_await client_.open(f.name);
  if (!open.ok()) co_return open.status();
  const Bytes n = rng_.range(cfg_.min_size, cfg_.max_size) / 4 + 1;
  auto wrote = co_await client_.pwrite(open.value().fh, f.size, io_buf_, n);
  if (!wrote.ok()) co_return wrote.status();
  f.size += wrote.value();
  stats_.bytes_written += wrote.value();
  ++stats_.appends;
  co_return co_await client_.close(open.value().fh);
}

sim::Task<Status> PostMark::txn_create() {
  File f;
  f.name = "pm" + std::to_string(next_file_id_++);
  f.size = rng_.range(cfg_.min_size, cfg_.max_size);
  auto created = co_await client_.create(f.name);
  if (!created.ok()) co_return created.status();
  f.fh = created.value().fh;
  auto n = co_await client_.pwrite(f.fh, 0, io_buf_, f.size);
  if (!n.ok()) co_return n.status();
  stats_.bytes_written += n.value();
  files_.push_back(std::move(f));
  ++stats_.creates;
  co_return Status::Ok();
}

sim::Task<Status> PostMark::txn_delete() {
  if (files_.size() <= 1) co_return Status::Ok();
  const auto idx = rng_.below(files_.size());
  const std::string name = files_[idx].name;
  files_[idx] = std::move(files_.back());
  files_.pop_back();
  ++stats_.deletes;
  co_return co_await client_.unlink(name);
}

sim::Task<Status> PostMark::warmup() {
  for (auto& f : files_) {
    auto st = co_await txn_read(f);
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

sim::Task<Result<PostMarkResult>> PostMark::run() {
  ORDMA_CHECK_MSG(!files_.empty(), "setup() must run first");
  stats_ = PostMarkResult{};
  const SimTime t0 = host_.engine().now();
  for (std::uint64_t t = 0; t < cfg_.transactions; ++t) {
    co_await host_.cpu_consume(cfg_.txn_proc);
    if (cfg_.read_only) {
      auto st = co_await txn_read(files_[rng_.below(files_.size())]);
      if (!st.ok()) co_return st;
    } else {
      if (rng_.uniform01() < cfg_.read_bias) {
        auto st = co_await txn_read(files_[rng_.below(files_.size())]);
        if (!st.ok()) co_return st;
      } else {
        auto st = co_await txn_append(files_[rng_.below(files_.size())]);
        if (!st.ok()) co_return st;
      }
      if (rng_.uniform01() < cfg_.create_bias) {
        auto st = co_await txn_create();
        if (!st.ok()) co_return st;
      } else {
        auto st = co_await txn_delete();
        if (!st.ok()) co_return st;
      }
    }
    ++stats_.transactions;
  }
  stats_.elapsed = host_.engine().now() - t0;
  stats_.txns_per_sec =
      stats_.elapsed.ns > 0
          ? static_cast<double>(stats_.transactions) / stats_.elapsed.to_sec()
          : 0.0;
  co_return stats_;
}

}  // namespace ordma::wl
