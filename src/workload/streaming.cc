#include "workload/streaming.h"

#include <algorithm>
#include <memory>

namespace ordma::wl {

namespace {

struct SharedState {
  explicit SharedState(sim::Engine& eng) : done(eng) {}
  Bytes next_off = 0;
  Bytes end = 0;
  Bytes block = 0;
  Bytes bytes_read = 0;
  unsigned live_workers = 0;
  bool failed = false;
  sim::Event<> done;
};

// One read-ahead worker: repeatedly claims the next block offset and reads
// it into its private buffer. `window` workers together form the
// application's read-ahead window.
sim::Task<void> worker(host::Host& host, core::FileClient& client,
                       std::uint64_t fh, mem::Vaddr buf,
                       std::shared_ptr<SharedState> st) {
  while (!st->failed && st->next_off < st->end) {
    const Bytes off = st->next_off;
    const Bytes chunk = std::min<Bytes>(st->block, st->end - off);
    st->next_off += chunk;
    auto n = co_await client.pread(fh, off, buf, chunk);
    if (!n.ok()) {
      st->failed = true;
      break;
    }
    st->bytes_read += n.value();
    if (n.value() < chunk) break;  // EOF
  }
  if (--st->live_workers == 0) st->done.set();
}

}  // namespace

sim::Task<Result<StreamResult>> stream_read(host::Host& host,
                                            core::FileClient& client,
                                            const std::string& path,
                                            StreamConfig cfg) {
  auto open = co_await client.open(path);
  if (!open.ok()) co_return open.status();
  const Bytes end =
      cfg.limit == 0 ? open.value().size
                     : std::min<Bytes>(cfg.limit, open.value().size);

  // Per-worker buffers, allocated once so registration caching works.
  std::vector<mem::Vaddr> bufs;
  for (unsigned w = 0; w < cfg.window; ++w) {
    bufs.push_back(host.map_new(host.user_as(), cfg.block));
  }

  StreamResult out;
  for (unsigned pass = 0; pass < cfg.passes; ++pass) {
    const bool measured =
        !cfg.measure_last_pass_only || pass + 1 == cfg.passes;
    const auto cpu0 = host.sample_cpu();
    const SimTime t0 = host.engine().now();

    auto st = std::make_shared<SharedState>(host.engine());
    st->end = end;
    st->block = cfg.block;
    st->live_workers = cfg.window;
    for (unsigned w = 0; w < cfg.window; ++w) {
      host.engine().spawn(worker(host, client, open.value().fh, bufs[w], st));
    }
    co_await st->done.wait();
    if (st->failed) co_return Errc::io_error;

    if (measured) {
      out.bytes += st->bytes_read;
      out.elapsed += host.engine().now() - t0;
      const auto cpu1 = host.sample_cpu();
      out.client_cpu_util = host::Host::utilisation(cpu0, cpu1);
    }
  }
  out.throughput_MBps = throughput_MBps(out.bytes, out.elapsed);
  co_return out;
}

}  // namespace ordma::wl
