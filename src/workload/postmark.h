// PostMark (Katcher, NetApp TR-3022) over any FileClient.
//
// Full benchmark: a pool of small files with sizes uniform in
// [min_size, max_size]; transactions randomly read or append a file and
// randomly create or delete one. The paper's Fig. 6 configuration is
// read-only: "read-only transactions without file creations or deletions.
// Each read I/O is preceded by a file open and followed by a file close"
// (§5.2), 4 KB average file size.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/file_client.h"
#include "host/host.h"

namespace ordma::wl {

struct PostMarkConfig {
  std::size_t num_files = 128;
  Bytes min_size = KiB(1);
  Bytes max_size = KiB(7);  // uniform → 4 KB average, as in §5.2
  std::uint64_t transactions = 2000;
  bool read_only = true;     // paper configuration
  double read_bias = 0.5;    // full-benchmark mode: P(read vs append)
  double create_bias = 0.5;  // full-benchmark mode: P(create vs delete)
  Bytes io_block = KiB(4);
  std::uint64_t seed = 1;
  // Benchmark-application bookkeeping per transaction (file selection, RNG,
  // statistics). Calibrated against Fig. 6 — see EXPERIMENTS.md.
  Duration txn_proc = usec_f(3);
};

struct PostMarkResult {
  std::uint64_t transactions = 0;
  Duration elapsed{};
  double txns_per_sec = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t appends = 0;
  std::uint64_t creates = 0;
  std::uint64_t deletes = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
};

class PostMark {
 public:
  PostMark(host::Host& host, core::FileClient& client, PostMarkConfig cfg);

  // Create the file pool (unmeasured).
  sim::Task<Status> setup();
  // Touch every file once (unmeasured): establishes open delegations and,
  // on ODAFS, collects remote references — the paper measures steady state.
  sim::Task<Status> warmup();
  // Run the transaction phase (resets statistics first).
  sim::Task<Result<PostMarkResult>> run();

 private:
  struct File {
    std::string name;
    std::uint64_t fh = 0;
    Bytes size = 0;
  };

  sim::Task<Status> txn_read(File& f);
  sim::Task<Status> txn_append(File& f);
  sim::Task<Status> txn_create();
  sim::Task<Status> txn_delete();

  host::Host& host_;
  core::FileClient& client_;
  PostMarkConfig cfg_;
  Rng rng_;
  std::vector<File> files_;
  std::uint64_t next_file_id_ = 0;
  mem::Vaddr io_buf_ = 0;
  Bytes io_buf_len_ = 0;
  PostMarkResult stats_;
};

}  // namespace ordma::wl
