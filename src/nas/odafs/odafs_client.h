// Optimistic DAFS client (§4.2): the user-level client file cache interposed
// over the DAFS client, extended with the ORDMA directory.
//
// Key principles implemented exactly as the paper lists them:
//  (a) the client maintains a directory of remote references to server
//      memory, built lazily from references the server piggybacks on each
//      RPC response — stored in cache block headers, which outnumber data
//      blocks so references survive data eviction;
//  (b) directory entries are never eagerly invalidated — a stale reference
//      faults at the server NIC and comes back as a recoverable exception;
//  (c) every ORDMA is prepared to catch that exception and retry via RPC,
//      whose reply carries a fresh reference.
//
// With use_ordma=false this is the plain cached DAFS client the paper
// compares against in Figures 6 and 7.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "cache/client_cache.h"
#include "core/file_client.h"
#include "nas/dafs/dafs_client.h"
#include "obs/signals.h"
#include "policy/policy.h"

namespace ordma::nas::odafs {

// How pwrite reaches the server (§4.2.2 writes):
//  * rpc_through  — classic write-through RPC (the pre-existing path).
//  * put_through  — optimistic ORDMA put into the server's cache block via
//    a piggybacked write reference, then a 1-RTT kPutCommit the server
//    verifies against the NIC's placement record (no per-byte server CPU).
//    Falls back to rpc_through when no reference is held or it is revoked.
//  * write_back   — dirty the client's cache block and return; a bounded
//    dirty pool is flushed through the put path on pressure, sync(), close
//    and server invalidations.
enum class WritePolicy { rpc_through, put_through, write_back };

struct OdafsClientConfig {
  cache::ClientCache::Config cache;
  dafs::DafsClientConfig dafs;
  bool use_ordma = true;   // false → "DAFS" bars in Figs. 6/7
  bool inline_rpc = false;  // RPC path: in-line replies instead of direct
  // Cache-internal read-ahead: misses within one application request are
  // fetched with this much concurrency ("the cache starts internal
  // read-ahead up to the size of the application request", §5.2).
  unsigned read_ahead_window = 8;
  // Upper bound on ORDMA→RPC fetch attempts per cache block (and write
  // re-issues) under faults; exhausting it surfaces the last error (or
  // Errc::io_error for integrity failures) to the caller.
  unsigned max_fetch_attempts = 3;
  // Write path (requires a server with writable_refs for the put paths;
  // puts degrade to RPC write-through when the server refuses them).
  WritePolicy write_policy = WritePolicy::rpc_through;
  // write_back: flush the oldest dirty block once this many are dirty
  // (0 = data_blocks/4; clamped to data_blocks/2 so fills always have
  // unpinned blocks to steal).
  std::size_t writeback_high_water = 0;
  // Adaptive per-op protocol selection (policy/policy.h). Disabled by
  // default: with policy.enabled=false the client behaves bit-identically
  // to one built before the engine existed (no decisions, no extra state
  // transitions, no RNG either way). When enabled, `write_policy` above
  // still names the static arm used if policy.adapt_writes is off.
  policy::PolicyConfig policy;
};

class OdafsClient : public core::FileClient {
 public:
  OdafsClient(host::Host& host, net::NodeId server, OdafsClientConfig cfg);

  // --- FileClient ---------------------------------------------------------
  sim::Task<Result<core::OpenResult>> open(const std::string& path) override;
  sim::Task<Status> close(std::uint64_t fh) override;
  sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                 mem::Vaddr user_va, Bytes len) override;
  sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                  mem::Vaddr user_va, Bytes len) override;
  sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) override;
  sim::Task<Result<core::OpenResult>> create(const std::string& path) override;
  sim::Task<Status> unlink(const std::string& path) override;
  // Flush every dirty write-back block through the put path (RPC fallback
  // per block); returns the last flush error, Ok when all landed.
  sim::Task<Status> sync() override;
  const char* protocol_name() const override {
    return cfg_.use_ordma ? "ODAFS" : "DAFS (cached)";
  }

  // Fetch one cache block (read path used by pread; exposed for benches
  // that want per-block latencies). `op` is the enclosing file operation's
  // trace context (obs/trace.h).
  sim::Task<Result<cache::ClientCache::Header*>> fetch_block(
      std::uint64_t fh, std::uint64_t idx, obs::OpId op = 0);

  cache::ClientCache& block_cache() { return cache_; }
  dafs::DafsClient& dafs() { return dafs_; }

  std::uint64_t ordma_reads() const { return ordma_reads_; }
  std::uint64_t ordma_faults() const { return ordma_faults_; }
  std::uint64_t rpc_reads() const { return rpc_reads_; }
  std::uint64_t attr_ordma() const { return attr_ordma_; }
  // Direct RPC reads re-issued because landed bytes failed verification,
  // and block fetches that exhausted max_fetch_attempts.
  std::uint64_t integrity_retries() const { return integrity_retries_; }
  std::uint64_t fetch_give_ups() const { return fetch_give_ups_; }
  // --- ORDMA write path / coherence counters -------------------------------
  std::uint64_t puts_issued() const { return puts_issued_; }
  std::uint64_t put_commits() const { return put_commits_; }
  // Commit attempts the server refused (put overtaken/lost → replayed).
  std::uint64_t put_rejects() const { return put_rejects_; }
  // Writes that degraded to RPC write-through (no/revoked reference).
  std::uint64_t put_fallbacks() const { return put_fallbacks_; }
  // Server-initiated invalidations processed / clean copies dropped /
  // poisoned fills refetched.
  std::uint64_t invalidates_rx() const { return dafs_.invalidates_rx(); }
  std::uint64_t inval_drops() const { return inval_drops_; }
  std::uint64_t inval_refetches() const { return inval_refetches_; }
  std::uint64_t wb_flushes() const { return wb_flushes_; }

  // --- Adaptive policy (policy/policy.h) -----------------------------------
  // The per-op protocol-selection engine fed by the signal plane the
  // FileClient base exports; enabled via OdafsClientConfig::policy.
  const policy::PolicyEngine& protocol_policy() const { return policy_; }

 private:
  sim::Task<Status> ensure_slab_registered(obs::OpId op);
  // Harvest piggybacked references into cache headers.
  void store_refs(std::uint64_t fh, const dafs::DafsReadResult& res);
  sim::Task<void> charge_pickup(obs::OpId op);

  // FileClient bodies with explicit trace context; the public overrides
  // wrap them in a fresh op id and its root ("op/...") span.
  sim::Task<Result<Bytes>> pread_op(std::uint64_t fh, Bytes off,
                                    mem::Vaddr user_va, Bytes len,
                                    obs::OpId op);
  sim::Task<Result<Bytes>> pwrite_op(std::uint64_t fh, Bytes off,
                                     mem::Vaddr user_va, Bytes len,
                                     obs::OpId op);
  // pwrite body for one concrete arm (`wp` is the effective policy for
  // this op — the static config, or the engine's per-op choice).
  sim::Task<Result<Bytes>> pwrite_arm(std::uint64_t fh, Bytes off,
                                      mem::Vaddr user_va, Bytes len,
                                      WritePolicy wp, obs::OpId op);
  sim::Task<Result<fs::Attr>> getattr_op(std::uint64_t fh, obs::OpId op);

  // --- ORDMA write path ----------------------------------------------------
  // Optimistic put of `data` at absolute file offset `pos` (all within one
  // server block) + kPutCommit, through a held write reference. Returns
  // the block's new commit version; not_found = no usable reference and
  // revoked/not_supported = reference dead server-side (both: the caller
  // falls back to an RPC write).
  sim::Task<Result<std::uint64_t>> put_piece(std::uint64_t fh, Bytes pos,
                                             std::span<const std::byte> data,
                                             std::uint32_t flags,
                                             obs::OpId op);
  // Write-back pwrite body and flush machinery.
  sim::Task<Result<Bytes>> pwrite_wb(std::uint64_t fh, Bytes off,
                                     mem::Vaddr user_va, Bytes len,
                                     obs::OpId op);
  sim::Task<Status> flush_block(cache::BlockKey key, obs::OpId op,
                                bool drop_after);
  sim::Task<Status> flush_oldest(obs::OpId op);
  sim::Task<Status> sync_op(obs::OpId op);
  // Update locally cached blocks covered by a completed write (in place).
  void apply_local_write(std::uint64_t fh, Bytes off,
                         std::span<const std::byte> data,
                         std::uint64_t version);
  // Server-initiated invalidation (called from the DAFS client's receive
  // loop; must not await — flushes are spawned, not awaited).
  void handle_invalidate(std::uint64_t ino, std::uint64_t fbn,
                         std::uint64_t version);
  std::size_t writeback_high_water() const;
  double wall_us() const;

  struct Inflight {
    explicit Inflight(sim::Engine& eng) : done(eng) {}
    sim::Event<> done;
    // Set by a racing invalidation: the bytes this fill gathered may
    // predate the committed write — discard and refetch.
    bool poisoned = false;
  };

  host::Host& host_;
  OdafsClientConfig cfg_;
  dafs::DafsClient dafs_;
  cache::ClientCache cache_;
  obs::Track trk_app_;  // root spans for this client's file ops
  std::unordered_map<cache::BlockKey, std::shared_ptr<Inflight>,
                     cache::BlockKeyHash>
      inflight_;
  std::optional<dafs::DafsClient::Registered> slab_reg_;
  std::unordered_map<std::uint64_t, Bytes> sizes_;  // fh → known file size
  std::unordered_map<std::uint64_t, cache::RemoteRef> attr_refs_;
  Bytes server_block_ = 0;

  std::uint64_t ordma_reads_ = 0;
  std::uint64_t ordma_faults_ = 0;
  std::uint64_t rpc_reads_ = 0;
  std::uint64_t attr_ordma_ = 0;
  std::uint64_t integrity_retries_ = 0;
  std::uint64_t fetch_give_ups_ = 0;

  // FIFO of blocks dirtied by write_back (clean→dirty edges only; entries
  // whose block was flushed or invalidated meanwhile are skipped).
  std::deque<cache::BlockKey> wb_fifo_;
  std::uint64_t puts_issued_ = 0;
  std::uint64_t put_commits_ = 0;
  std::uint64_t put_rejects_ = 0;
  std::uint64_t put_fallbacks_ = 0;
  std::uint64_t inval_drops_ = 0;
  std::uint64_t inval_refetches_ = 0;
  std::uint64_t wb_flushes_ = 0;

  policy::PolicyEngine policy_;
};

}  // namespace ordma::nas::odafs
