#include "nas/odafs/odafs_client.h"

#include <algorithm>
#include <cstdio>

#include "obs/sampler.h"

#include "nas/wire_util.h"

namespace ordma::nas::odafs {

namespace {
// Failures worth another ORDMA→RPC round: exhausted retransmits, a
// (spuriously) revoked capability, or a transient media/integrity error.
bool fetch_retryable(Errc e) {
  return e == Errc::timed_out || e == Errc::revoked || e == Errc::io_error;
}
}  // namespace

OdafsClient::OdafsClient(host::Host& host, net::NodeId server,
                         OdafsClientConfig cfg)
    : host_(host),
      cfg_(cfg),
      dafs_(host, server, cfg.dafs),
      cache_(host, cfg.cache),
      trk_app_(host.name(), "app"),
      policy_(cfg.policy, &signals_) {
  dafs_.set_invalidate_handler(
      [this](std::uint64_t ino, std::uint64_t fbn, std::uint64_t version) {
        handle_invalidate(ino, fbn, version);
      });
}

std::size_t OdafsClient::writeback_high_water() const {
  const std::size_t cap = std::max<std::size_t>(1, cache_.data_capacity() / 2);
  if (cfg_.writeback_high_water != 0) {
    return std::min(cfg_.writeback_high_water, cap);
  }
  return std::max<std::size_t>(1, cache_.data_capacity() / 4);
}

double OdafsClient::wall_us() const {
  return static_cast<double>(host_.engine().now().ns) / 1000.0;
}

sim::Task<Status> OdafsClient::ensure_slab_registered(obs::OpId op) {
  if (slab_reg_) co_return Status::Ok();
  auto reg = co_await dafs_.ensure_registered(cache_.slab_base(),
                                              cache_.slab_len(), op);
  if (!reg.ok()) co_return reg.status();
  // Concurrent callers resolve to the same registration (deduplicated by
  // DafsClient's registration cache).
  slab_reg_ = *reg.value();
  co_return Status::Ok();
}

sim::Task<void> OdafsClient::charge_pickup(obs::OpId op) {
  const auto& cm = host_.costs();
  if (cfg_.dafs.completion == msg::Completion::poll) {
    co_await host_.cpu_consume(cm.vi_poll_pickup, op, "io/pickup");
  } else {
    co_await host_.cpu_consume(cm.cpu_interrupt + cm.vi_block_wakeup, op,
                               "io/pickup");
  }
}

void OdafsClient::store_refs(std::uint64_t fh,
                             const dafs::DafsReadResult& res) {
  if (!cfg_.use_ordma || server_block_ == 0) return;
  const Bytes cbs = cache_.block_size();
  const Bytes sbs = server_block_;
  if (cbs > sbs) return;  // one client block would need multiple ORDMAs
  for (std::size_t r = 0; r < res.refs.size(); ++r) {
    const auto& [server_fbn, ref] = res.refs[r];
    const Bytes server_off = server_fbn * sbs;
    for (Bytes sub = 0; sub + cbs <= sbs; sub += cbs) {
      const std::uint64_t idx = (server_off + sub) / cbs;
      auto& hdr = cache_.ensure(cache::BlockKey{fh, idx});
      cache::RemoteRef sub_ref = ref;
      sub_ref.va = ref.va + sub;
      sub_ref.len = cbs;
      cache_.set_ref(hdr, sub_ref);
      // Coherence servers piggyback the block's commit version; remember
      // the newest one seen so refills can be tagged conservatively.
      if (r < res.ref_versions.size()) {
        hdr.ref_version = std::max(hdr.ref_version, res.ref_versions[r]);
      }
    }
  }
}

sim::Task<Result<cache::ClientCache::Header*>> OdafsClient::fetch_block(
    std::uint64_t fh, std::uint64_t idx, obs::OpId op) {
  const auto& cm = host_.costs();
  const Bytes cbs = cache_.block_size();
  const cache::BlockKey key{fh, idx};

  // A block being filled may already have a data slot attached (it is the
  // RDMA target), so the in-flight check must come before the hit check —
  // otherwise a concurrent reader would consume bytes that have not
  // arrived yet.
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    auto shared = it->second;
    co_await shared->done.wait();
    auto* again = cache_.find(key);
    if (again && again->has_data()) co_return again;
    co_return Errc::io_error;  // the fetch we joined failed
  }
  if (auto* hit = cache_.find(key); hit && hit->has_data()) {
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::cache_hit, fh, idx);
    co_await host_.cpu_consume(cm.cache_hit_proc, op, "io/cache_hit");
    co_return hit;
  }
  auto flight = std::make_shared<Inflight>(host_.engine());
  inflight_.emplace(key, flight);
  struct FlightGuard {
    OdafsClient* self;
    cache::BlockKey key;
    std::shared_ptr<Inflight> flight;
    ~FlightGuard() {
      self->inflight_.erase(key);
      flight->done.set();
    }
  } flight_guard{this, key, flight};

  // Pin the header so cache pressure from concurrent read-ahead can't
  // steal the block out from under this fill.
  auto& hdr = cache_.ensure(key);
  ++hdr.pin;
  struct PinGuard {
    cache::ClientCache::Header* h;
    ~PinGuard() { --h->pin; }
  } pin_guard{&hdr};

  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::cache_miss,
                        fh, idx);
  co_await host_.cpu_consume(cm.cache_miss_proc, op, "io/cache_miss");
  co_await ensure_slab_registered(op);

  const Bytes block_off = idx * cbs;
  auto size_it = sizes_.find(fh);
  const Bytes file_size =
      size_it == sizes_.end() ? ~Bytes{0} : size_it->second;
  const Bytes want =
      block_off >= file_size ? 0 : std::min<Bytes>(cbs, file_size - block_off);
  if (want == 0) {
    // Nothing to read (at or past EOF): an empty valid block.
    cache_.attach_data(hdr, 0);
    co_return &hdr;
  }

  // The fill runs in rounds: normally exactly one, but a server
  // invalidation that races the fill poisons it (the gathered bytes may
  // predate the committed write) and the round repeats. Bounded so a
  // revalidation storm surfaces as a clean error instead of livelock.
  constexpr unsigned kMaxPoisonRounds = 16;
  for (unsigned round = 0;; ++round) {
    flight->poisoned = false;
    bool filled = false;

    // --- ORDMA fast path (§4.2) --------------------------------------------
    // The adaptive policy may veto a held reference (e.g. a fault storm
    // made exceptions dearer than straight RPC); vetoed fetches take the
    // RPC path below, whose reply refreshes the reference anyway.
    bool try_ordma = cfg_.use_ordma && hdr.ref;
    if (try_ordma && policy_.enabled() && round == 0) {
      try_ordma = policy_.choose_read() == policy::ReadMech::ordma;
    }
    if (try_ordma) {
      const auto ref = *hdr.ref;
      const SimTime ot0 = host_.engine().now();
      auto res = co_await host_.nic().gm_get(dafs_.server_node(), ref.va,
                                             want, ref.cap, op);
      co_await charge_pickup(op);
      const double ordma_us = (host_.engine().now() - ot0).to_us();
      if (res.ok()) {
        ++ordma_reads_;
        signals_.ref_hit_rate.update(1.0);
        signals_.exception_rate.update(0.0);
        if (policy_.enabled()) {
          policy_.observe_read(policy::ReadMech::ordma, ordma_us, false);
        }
        cache_.attach_data(hdr, want);
        cache_.write_block(hdr, res.value().view());  // NIC-placed: no copy
        filled = true;
      } else {
        // Recoverable exception: drop the stale reference, retry via RPC.
        ++ordma_faults_;
        signals_.exception_rate.update(1.0);
        if (policy_.enabled()) {
          policy_.observe_read(policy::ReadMech::ordma, ordma_us, true);
        }
        obs::note_op_exception(op);
        cache_.clear_ref(hdr);
      }
    }

    // --- RPC path (bounded retry; direct fills verified by checksum) -------
    if (!filled) {
      ++rpc_reads_;
      signals_.ref_hit_rate.update(0.0);
      const SimTime rt0 = host_.engine().now();
      dafs::DafsReadResult result;
      Status last = Status(Errc::io_error);
      for (unsigned attempt = 1;
           !filled && attempt <= cfg_.max_fetch_attempts; ++attempt) {
        if (cfg_.inline_rpc) {
          auto res = co_await dafs_.read_inline(fh, block_off, want, op);
          if (!res.ok()) {
            last = res.status();
            if (fetch_retryable(last.code())) {
              note_retry();
              obs::note_op_retry(op);
              continue;
            }
            co_return last;
          }
          result = std::move(res.value());
          cache_.attach_data(hdr, result.n);
          // In-line data must be copied from the communication buffer into
          // the file cache (the Table 3 "in cache" copy).
          co_await host_.copy(result.n, op);
          cache_.write_block(hdr,
                             result.inline_data.view().subspan(0, result.n));
          filled = true;
        } else {
          const mem::Vaddr va = cache_.attach_data(hdr, want);
          auto res = co_await dafs_.read_direct(fh, block_off, want,
                                                slab_reg_->nic_va(va),
                                                slab_reg_->cap, op);
          if (!res.ok()) {
            last = res.status();
            if (fetch_retryable(last.code())) {
              note_retry();
              obs::note_op_retry(op);
              continue;
            }
            co_return last;
          }
          // The server's RDMA write into the cache slab is unacked: verify
          // the landed bytes before exposing the block to readers.
          std::vector<std::byte> landed(res.value().n);
          if (!landed.empty() && !host_.user_as().read(va, landed).ok()) {
            co_return Errc::access_fault;
          }
          if (data_checksum(landed) != res.value().data_cksum) {
            ++integrity_retries_;
            note_retry();
            obs::note_op_retry(op);
            last = Status(Errc::io_error);
            continue;
          }
          result = std::move(res.value());
          hdr.valid = result.n;
          filled = true;
        }
      }
      if (!filled) {
        ++fetch_give_ups_;
        // Mark at the decision site: a give-up inside a spawned prefetch
        // never propagates to the wrapper, but its op must still be
        // retained by the trace sampler.
        obs::note_op_error(op);
        obs::flight::note_giveup(host_.flight(), host_.engine().now().ns, op,
                                 static_cast<std::uint64_t>(last.code()));
        co_return last;
      }
      if (policy_.enabled()) {
        policy_.observe_read(policy::ReadMech::rpc,
                             (host_.engine().now() - rt0).to_us(), false);
      }
      store_refs(fh, result);
    }

    // Tag the data copy with the newest commit version this client knows
    // for the block (conservative: the gathered bytes are at least this
    // new), so invalidations can tell stale copies from fresh ones.
    hdr.version = hdr.ref_version;
    if (!flight->poisoned) co_return &hdr;
    if (round + 1 >= kMaxPoisonRounds) co_return Errc::io_error;
    ++inval_refetches_;
  }
}

// ---------------------------------------------------------------------------
// FileClient
// ---------------------------------------------------------------------------

sim::Task<Result<core::OpenResult>> OdafsClient::open(
    const std::string& path) {
  // Go through dafs_open (not dafs_.open) when undelgated so the attribute
  // reference in the reply is visible; delegated re-opens stay local.
  auto res = co_await dafs_.open(path);
  if (res.ok()) {
    sizes_[res.value().fh] = res.value().size;
    server_block_ = dafs_.server_block_size();
    if (const auto* info = dafs_.last_open_info();
        info && info->fh == res.value().fh && info->attr_ref) {
      attr_refs_[info->fh] = *info->attr_ref;
    }
  }
  co_return res;
}

sim::Task<Status> OdafsClient::close(std::uint64_t fh) {
  if (cfg_.use_ordma && (cfg_.write_policy == WritePolicy::write_back ||
                         policy_.may_write_back())) {
    // close-to-open consistency: dirty blocks reach the server before the
    // close RPC does. With the adaptive policy, *any* op may have taken
    // the write-back arm, so the sync must not depend on the static arm.
    auto st = co_await sync();
    if (!st.ok()) co_return st;
  }
  co_return co_await dafs_.close(fh);
}

sim::Task<Result<Bytes>> OdafsClient::pread(std::uint64_t fh, Bytes off,
                                            mem::Vaddr user_va, Bytes len) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await pread_op(fh, off, user_va, len, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/pread", b, e);
  record_op(op, e - b, r.ok());
  update_op_signals(len, wall_us());
  co_return r;
}

sim::Task<Result<Bytes>> OdafsClient::pread_op(std::uint64_t fh, Bytes off,
                                               mem::Vaddr user_va, Bytes len,
                                               obs::OpId op) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall, op, "io/syscall");
  const Bytes cbs = cache_.block_size();

  // Cache-internal read-ahead (§5.2): keep up to `window` block fetches in
  // flight ahead of the in-order consume position. Prefetched blocks are
  // consumed (copied out) as soon as the sequential scan reaches them, so a
  // small cache is never thrashed by its own read-ahead.
  const std::uint64_t first_idx = off / cbs;
  const std::uint64_t last_idx = len == 0 ? first_idx : (off + len - 1) / cbs;
  std::uint64_t prefetched = first_idx;
  // Clamp so concurrent fills can never pin the whole data pool.
  const std::uint64_t window = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(cfg_.read_ahead_window,
                                 cache_.data_capacity() / 2));

  struct PrefetchTracker {
    explicit PrefetchTracker(sim::Engine& eng) : drained(eng) {}
    unsigned live = 0;
    bool closing = false;
    sim::Event<> drained;
  };
  auto tracker = std::make_shared<PrefetchTracker>(host_.engine());

  auto issue_prefetches = [&](std::uint64_t consume_idx) {
    const std::uint64_t limit =
        std::min<std::uint64_t>(last_idx + 1, consume_idx + window);
    while (prefetched < limit) {
      const std::uint64_t idx = prefetched++;
      ++tracker->live;
      host_.engine().spawn(
          [](OdafsClient& self, std::uint64_t fh, std::uint64_t idx,
             std::shared_ptr<PrefetchTracker> t,
             obs::OpId op) -> sim::Task<void> {
            (void)co_await self.fetch_block(fh, idx, op);
            if (--t->live == 0 && t->closing) t->drained.set();
          }(*this, fh, idx, tracker, op));
    }
  };
  struct DrainGuard {
    // pread must not return while its prefetches are still pinning blocks.
    std::shared_ptr<PrefetchTracker> t;
    sim::Task<void> drain() {
      t->closing = true;
      if (t->live > 0) co_await t->drained.wait();
    }
  } drain_guard{tracker};

  Bytes done = 0;
  while (done < len) {
    const Bytes pos = off + done;
    const std::uint64_t idx = pos / cbs;
    const Bytes boff = pos % cbs;
    const Bytes chunk = std::min<Bytes>(len - done, cbs - boff);

    if (window > 1) issue_prefetches(idx);
    auto hdr = co_await fetch_block(fh, idx, op);
    if (!hdr.ok()) {
      co_await drain_guard.drain();
      co_return hdr.status();
    }
    const auto& h = *hdr.value();
    if (boff >= h.valid) break;  // EOF inside this block
    const Bytes avail = std::min<Bytes>(chunk, h.valid - boff);

    // Cache block → user buffer copy.
    std::vector<std::byte> tmp(avail);
    ORDMA_CHECK(host_.user_as()
                    .read(cache_.block_va(h) + boff, tmp)
                    .ok());
    co_await host_.copy(avail, op);
    if (!host_.user_as().write(user_va + done, tmp).ok()) {
      co_await drain_guard.drain();
      co_return Errc::access_fault;
    }
    done += avail;
    if (avail < chunk) break;
  }
  co_await drain_guard.drain();
  co_return done;
}

sim::Task<Result<Bytes>> OdafsClient::pwrite(std::uint64_t fh, Bytes off,
                                             mem::Vaddr user_va, Bytes len) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await pwrite_op(fh, off, user_va, len, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/pwrite", b, e);
  record_op(op, e - b, r.ok());
  update_op_signals(len, wall_us());
  co_return r;
}

void OdafsClient::apply_local_write(std::uint64_t fh, Bytes off,
                                    std::span<const std::byte> data,
                                    std::uint64_t version) {
  // Update any cached blocks the write covers (in place — outstanding
  // references stay usable). A non-zero commit version retags the copies:
  // they now hold the committed bytes.
  const Bytes cbs = cache_.block_size();
  Bytes done = 0;
  while (done < data.size()) {
    const Bytes pos = off + done;
    const std::uint64_t idx = pos / cbs;
    const Bytes boff = pos % cbs;
    const Bytes chunk = std::min<Bytes>(data.size() - done, cbs - boff);
    if (auto* h = cache_.find(cache::BlockKey{fh, idx});
        h && h->has_data()) {
      ORDMA_CHECK(host_.user_as()
                      .write(cache_.block_va(*h) + boff,
                             data.subspan(done, chunk))
                      .ok());
      h->valid = std::max<Bytes>(h->valid, boff + chunk);
      if (version != 0) {
        h->version = std::max(h->version, version);
        h->ref_version = std::max(h->ref_version, version);
      }
    }
    done += chunk;
  }
}

namespace {
policy::WriteArm to_arm(WritePolicy wp) {
  switch (wp) {
    case WritePolicy::rpc_through: return policy::WriteArm::rpc;
    case WritePolicy::put_through: return policy::WriteArm::put;
    case WritePolicy::write_back: return policy::WriteArm::write_back;
  }
  return policy::WriteArm::rpc;
}
WritePolicy to_write_policy(policy::WriteArm arm) {
  switch (arm) {
    case policy::WriteArm::rpc: return WritePolicy::rpc_through;
    case policy::WriteArm::put: return WritePolicy::put_through;
    case policy::WriteArm::write_back: return WritePolicy::write_back;
  }
  return WritePolicy::rpc_through;
}
}  // namespace

sim::Task<Result<Bytes>> OdafsClient::pwrite_op(std::uint64_t fh, Bytes off,
                                                mem::Vaddr user_va, Bytes len,
                                                obs::OpId op) {
  WritePolicy wp = cfg_.write_policy;
  const bool adaptive = cfg_.use_ordma && policy_.adapts_writes();
  if (adaptive) wp = to_write_policy(policy_.choose_write());
  const SimTime t0 = host_.engine().now();
  const std::uint64_t fallbacks0 = put_fallbacks_;
  auto r = co_await pwrite_arm(fh, off, user_va, len, wp, op);
  if (adaptive && r.ok()) {
    policy_.observe_write(to_arm(wp), (host_.engine().now() - t0).to_us(),
                          put_fallbacks_ > fallbacks0);
  }
  co_return r;
}

sim::Task<Result<Bytes>> OdafsClient::pwrite_arm(std::uint64_t fh, Bytes off,
                                                 mem::Vaddr user_va,
                                                 Bytes len, WritePolicy wp,
                                                 obs::OpId op) {
  if (cfg_.use_ordma && wp == WritePolicy::write_back) {
    co_return co_await pwrite_wb(fh, off, user_va, len, op);
  }
  co_await host_.cpu_consume(host_.costs().cpu_syscall, op, "io/syscall");
  // Write-through: update the server, then refresh our cached copy. Server
  // cache blocks are updated in place so outstanding references stay
  // usable (§4.2.2: writes also update file state server-side).
  std::vector<std::byte> data(len);
  if (!host_.user_as().read(user_va, data).ok()) {
    co_return Errc::access_fault;
  }

  if (cfg_.use_ordma && wp == WritePolicy::put_through &&
      server_block_ != 0 && len > 0) {
    // Optimistic ORDMA write-through: per covered server block, put the
    // bytes straight into the server's cache block and commit with one
    // round trip; pieces without a usable reference degrade to RPC.
    const Bytes sbs = server_block_;
    Bytes done = 0;
    while (done < len) {
      const Bytes pos = off + done;
      const Bytes piece = std::min<Bytes>(len - done, sbs - pos % sbs);
      const std::span<const std::byte> bytes(data.data() + done, piece);
      std::uint64_t version = 0;
      auto v = co_await put_piece(fh, pos, bytes, 0, op);
      if (v.ok()) {
        version = v.value();
      } else {
        // Any exhausted put failure degrades to RPC, not just a dead
        // reference: an uncommitted put is never applied server-side, so
        // replaying the bytes inline is safe even when the put was lost
        // mid-resolve (revoke fire) or the commit ack went missing.
        ++put_fallbacks_;
        Result<Bytes> n = Errc::io_error;
        for (unsigned a = 1; a <= cfg_.max_fetch_attempts; ++a) {
          n = co_await dafs_.write_inline(fh, pos, bytes, op);
          if (n.ok() || !fetch_retryable(n.code())) break;
        }
        if (!n.ok()) co_return n.status();
      }
      apply_local_write(fh, pos, bytes, version);
      done += piece;
    }
    auto& size = sizes_[fh];
    size = std::max<Bytes>(size, off + len);
    co_return len;
  }

  // Idempotent write-through: re-issue (bounded) when the request gave up
  // on retransmits or hit a transient error.
  Result<Bytes> n = Errc::io_error;
  for (unsigned attempt = 1; attempt <= cfg_.max_fetch_attempts; ++attempt) {
    n = co_await dafs_.write_inline(fh, off, data, op);
    if (n.ok() || !fetch_retryable(n.code())) break;
  }
  if (!n.ok()) co_return n.status();

  auto& size = sizes_[fh];
  size = std::max<Bytes>(size, off + n.value());

  apply_local_write(
      fh, off, std::span<const std::byte>(data.data(), n.value()), 0);
  co_return n.value();
}

sim::Task<Result<std::uint64_t>> OdafsClient::put_piece(
    std::uint64_t fh, Bytes pos, std::span<const std::byte> data,
    std::uint32_t flags, obs::OpId op) {
  if (!cfg_.use_ordma || server_block_ == 0) co_return Errc::not_supported;
  const Bytes cbs = cache_.block_size();
  const Bytes sbs = server_block_;
  if (cbs > sbs || data.empty()) co_return Errc::not_supported;
  const std::uint64_t sfbn = pos / sbs;
  const Bytes soff = pos % sbs;
  ORDMA_CHECK(soff + data.size() <= sbs);

  // Any sibling client block of the server block may hold a usable write
  // reference: the piggybacked capability covers the whole exported server
  // block, so cap.base is the block's base NIC address.
  const std::uint64_t first = sfbn * sbs / cbs;
  const std::uint64_t count = sbs / cbs;
  std::optional<crypto::Capability> cap;
  for (std::uint64_t i = 0; i < count && !cap; ++i) {
    if (auto* h = cache_.peek(cache::BlockKey{fh, first + i});
        h && h->ref &&
        crypto::allows(h->ref->cap.perm, crypto::SegPerm::write)) {
      cap = h->ref->cap;
    }
  }
  if (!cap) co_return Errc::not_found;

  const std::uint32_t cksum = data_checksum(data);
  Status last = Status(Errc::io_error);
  for (unsigned attempt = 1; attempt <= cfg_.max_fetch_attempts; ++attempt) {
    // Unacked put: VI in-order delivery guarantees the commit RPC below
    // arrives at the server after the written bytes did.
    ++puts_issued_;
    auto put = co_await host_.nic().gm_put(dafs_.server_node(),
                                           cap->base + soff,
                                           net::Buffer::copy_of(data), *cap,
                                           /*wait_ack=*/false, op);
    if (!put.ok()) {
      last = put;
      if (fetch_retryable(put.code())) continue;
      break;
    }
    auto res = co_await dafs_.put_commit(fh, sfbn, soff, data.size(), cksum,
                                         flags, op);
    if (res.ok()) {
      ++put_commits_;
      co_return res.value().version;
    }
    const Errc e = res.code();
    if (e != Errc::timed_out) ++put_rejects_;
    if (e == Errc::revoked || e == Errc::not_supported) {
      // Reference dead server-side: drop every covered reference so the
      // caller (and future writes) go straight to RPC until refreshed.
      for (std::uint64_t i = 0; i < count; ++i) {
        if (auto* h = cache_.peek(cache::BlockKey{fh, first + i});
            h && h->ref) {
          cache_.clear_ref(*h);
        }
      }
      co_return e;
    }
    // io_error = the put was lost or overtaken at the NIC (e.g. a revoke
    // fault between placement and commit); timed_out = commit gave up on
    // retransmits. Both: replay put + commit.
    last = res.status();
    if (!fetch_retryable(e)) break;
  }
  co_return last;
}

sim::Task<Result<Bytes>> OdafsClient::pwrite_wb(std::uint64_t fh, Bytes off,
                                                mem::Vaddr user_va, Bytes len,
                                                obs::OpId op) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall, op, "io/syscall");
  std::vector<std::byte> data(len);
  if (!host_.user_as().read(user_va, data).ok()) {
    co_return Errc::access_fault;
  }
  const Bytes cbs = cache_.block_size();
  const std::size_t high_water = writeback_high_water();

  Bytes done = 0;
  while (done < len) {
    const Bytes pos = off + done;
    const std::uint64_t idx = pos / cbs;
    const Bytes boff = pos % cbs;
    const Bytes chunk = std::min<Bytes>(len - done, cbs - boff);

    // Dirty-pool pressure: flush the oldest dirty block first so fills and
    // fresh writes always find stealable blocks.
    while (cache_.dirty_blocks() >= high_water && !wb_fifo_.empty()) {
      auto st = co_await flush_oldest(op);
      if (!st.ok()) co_return st;
    }

    const cache::BlockKey key{fh, idx};
    auto* h = cache_.find(key);
    if (!(h && h->has_data())) {
      auto size_it = sizes_.find(fh);
      const Bytes file_size =
          size_it == sizes_.end() ? Bytes{0} : size_it->second;
      if (chunk < cbs && idx * cbs < file_size) {
        // Partial write into a block with existing bytes: read-modify-write
        // through the normal fill path.
        auto fb = co_await fetch_block(fh, idx, op);
        if (!fb.ok()) co_return fb.status();
        h = fb.value();
      } else {
        // Full overwrite, or the block lies at/beyond EOF: no fetch. Zero
        // the leading gap so stale slab bytes are never exposed.
        h = &cache_.ensure(key);
        const mem::Vaddr va = cache_.attach_data(*h, 0);
        if (boff > 0) {
          const std::vector<std::byte> zero(boff);
          ORDMA_CHECK(host_.user_as().write(va, zero).ok());
          h->valid = boff;
        }
      }
    }
    // Byte write, valid extension and dirty marking happen with no await
    // between them, so eviction can never steal the block part-way.
    ORDMA_CHECK(host_.user_as()
                    .write(cache_.block_va(*h) + boff,
                           std::span<const std::byte>(data.data() + done,
                                                      chunk))
                    .ok());
    h->valid = std::max<Bytes>(h->valid, boff + chunk);
    const bool newly_dirty = !h->dirty();
    cache_.mark_dirty(*h, boff, boff + chunk);
    if (newly_dirty) wb_fifo_.push_back(key);
    co_await host_.copy(chunk, op);  // user buffer → cache block
    done += chunk;
  }
  auto& size = sizes_[fh];
  size = std::max<Bytes>(size, off + len);
  co_return len;
}

sim::Task<Status> OdafsClient::flush_block(cache::BlockKey key, obs::OpId op,
                                           bool drop_after) {
  auto* h = cache_.peek(key);
  if (!h || !h->dirty()) co_return Status::Ok();
  const SimTime flush_t0 = host_.engine().now();
  const Bytes lo = h->dirty_lo;
  const Bytes hi = h->dirty_hi;
  std::vector<std::byte> data(hi - lo);
  ORDMA_CHECK(host_.user_as().read(cache_.block_va(*h) + lo, data).ok());
  // Clean before the first await: writes landing mid-flush re-dirty the
  // block and re-queue it, so their bytes are never silently lost.
  cache_.clear_dirty(*h);
  ++wb_flushes_;
  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::wb_flush,
                        key.file, key.idx,
                        static_cast<std::uint32_t>(hi - lo));

  const Bytes pos = key.idx * cache_.block_size() + lo;
  std::uint64_t version = 0;
  Status st = Status::Ok();
  auto v = co_await put_piece(key.file, pos, data, dafs::kPutFlagWriteback, op);
  if (v.ok()) {
    version = v.value();
  } else {
    // Same recovery as write-through: every exhausted put failure replays
    // inline over RPC (an uncommitted put is never applied server-side).
    ++put_fallbacks_;
    Result<Bytes> n = Errc::io_error;
    for (unsigned a = 1; a <= cfg_.max_fetch_attempts; ++a) {
      n = co_await dafs_.write_inline(key.file, pos, data, op);
      if (n.ok() || !fetch_retryable(n.code())) break;
    }
    if (!n.ok()) st = n.status();
  }

  h = cache_.peek(key);  // awaits above: re-establish the header
  if (!st.ok()) {
    // Total failure: restore the dirty range (unless a concurrent write
    // already re-dirtied, which widens over ours anyway) and re-queue.
    if (h && h->has_data()) {
      const bool newly_dirty = !h->dirty();
      cache_.mark_dirty(*h, lo, hi);
      if (newly_dirty) wb_fifo_.push_back(key);
    }
    co_return st;
  }
  if (h != nullptr) {
    if (version != 0) {
      h->version = std::max(h->version, version);
      h->ref_version = std::max(h->ref_version, version);
    }
    // Invalidation-triggered flush: drop the local copy so the next read
    // refetches the merge of our bytes with the conflicting writer's.
    if (drop_after && h->has_data() && !h->dirty() && h->pin == 0) {
      cache_.drop_data(*h);
      ++inval_drops_;
    }
  }
  if (policy_.enabled()) {
    // The deferred bill of the write-back arm, fed to its cost estimate.
    policy_.observe_flush((host_.engine().now() - flush_t0).to_us());
  }
  co_return Status::Ok();
}

sim::Task<Status> OdafsClient::flush_oldest(obs::OpId op) {
  while (!wb_fifo_.empty()) {
    const cache::BlockKey key = wb_fifo_.front();
    wb_fifo_.pop_front();
    auto* h = cache_.peek(key);
    if (!h || !h->dirty()) continue;  // flushed or invalidated meanwhile
    co_return co_await flush_block(key, op, /*drop_after=*/false);
  }
  co_return Status::Ok();
}

sim::Task<Status> OdafsClient::sync() {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto st = co_await sync_op(op);
  if (!st.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/sync", b, e);
  record_op(op, e - b, st.ok());
  co_return st;
}

sim::Task<Status> OdafsClient::sync_op(obs::OpId op) {
  // Drain a snapshot: failed flushes re-queue themselves, and draining the
  // live FIFO would livelock on a permanently failing block.
  const std::vector<cache::BlockKey> snap(wb_fifo_.begin(), wb_fifo_.end());
  wb_fifo_.clear();
  Status last = Status::Ok();
  for (const auto& key : snap) {
    auto* h = cache_.peek(key);
    if (!h || !h->dirty()) continue;
    auto st = co_await flush_block(key, op, /*drop_after=*/false);
    if (!st.ok()) last = st;
  }
  co_return last;
}

void OdafsClient::handle_invalidate(std::uint64_t ino, std::uint64_t fbn,
                                    std::uint64_t version) {
  if (server_block_ == 0 || cache_.block_size() > server_block_) return;
  const Bytes cbs = cache_.block_size();
  const Bytes sbs = server_block_;
  const std::uint64_t first = fbn * sbs / cbs;
  const std::uint64_t count = std::max<Bytes>(1, sbs / cbs);
  for (std::uint64_t i = 0; i < count; ++i) {
    const cache::BlockKey key{ino, first + i};  // fh == ino in this protocol
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      // A racing fill: poison it — never drop its slot, the in-flight RDMA
      // gather would land in freed (possibly reassigned) memory.
      it->second->poisoned = true;
      continue;
    }
    auto* h = cache_.peek(key);
    if (h == nullptr) continue;
    if (h->dirty()) {
      // Conflicting writer committed while we hold dirty bytes: push ours
      // out, then drop the copy so the next read sees the merged result.
      host_.engine().spawn(
          [](OdafsClient& self, cache::BlockKey k) -> sim::Task<void> {
            (void)co_await self.flush_block(k, 0, /*drop_after=*/true);
          }(*this, key));
      continue;
    }
    if (h->pin > 0) continue;  // mid-use (fill/flush): conservative skip
    if (h->has_data() && h->version < version) {
      cache_.drop_data(*h);
      ++inval_drops_;
    }
  }
}

sim::Task<Result<fs::Attr>> OdafsClient::getattr(std::uint64_t fh) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await getattr_op(fh, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/getattr", b, e);
  record_op(op, e - b, r.ok());
  sample_server_cpu(wall_us());
  co_return r;
}

sim::Task<Result<fs::Attr>> OdafsClient::getattr_op(std::uint64_t fh,
                                                    obs::OpId op) {
  // Attribute extension (§4.2.2 motivates "attribute accesses"): read the
  // file's marshalled attribute record from server memory by ORDMA; any
  // fault (revoked region) or stale record (reused slot) falls back to RPC.
  if (cfg_.use_ordma) {
    if (auto it = attr_refs_.find(fh); it != attr_refs_.end()) {
      auto res = co_await host_.nic().gm_get(dafs_.server_node(),
                                             it->second.va,
                                             fs::ServerFs::kAttrRecordSize,
                                             it->second.cap, op);
      co_await charge_pickup(op);
      if (res.ok()) {
        auto attr = fs::ServerFs::decode_attr_record(res.value().view(), fh);
        if (attr.ok()) {
          ++attr_ordma_;
          signals_.exception_rate.update(0.0);
          co_return attr.value();
        }
      }
      signals_.exception_rate.update(1.0);
      obs::note_op_exception(op);
      attr_refs_.erase(fh);  // stale: drop and fall through to RPC
    }
  }
  co_return co_await dafs_.getattr_op(fh, op);
}

sim::Task<Result<core::OpenResult>> OdafsClient::create(
    const std::string& path) {
  auto res = co_await dafs_.create(path);
  if (res.ok()) {
    sizes_[res.value().fh] = 0;
    server_block_ = dafs_.server_block_size();
  }
  co_return res;
}

sim::Task<Status> OdafsClient::unlink(const std::string& path) {
  co_return co_await dafs_.unlink(path);
}

}  // namespace ordma::nas::odafs
