// Shared XDR encode/decode helpers for NAS protocol messages: file
// attributes, capabilities and remote memory references.
#pragma once

#include "cache/client_cache.h"
#include "crypto/capability.h"
#include "fs/server_fs.h"
#include "rpc/xdr.h"

namespace ordma::nas {

inline void encode_attr(rpc::XdrEncoder& enc, const fs::Attr& a) {
  enc.u64(a.ino);
  enc.u32(static_cast<std::uint32_t>(a.type));
  enc.u64(a.size);
  enc.i64(a.mtime.ns);
  enc.u32(a.nlink);
}

inline fs::Attr decode_attr(rpc::XdrDecoder& dec) {
  fs::Attr a;
  a.ino = dec.u64();
  a.type = static_cast<fs::FileType>(dec.u32());
  a.size = dec.u64();
  a.mtime = SimTime{dec.i64()};
  a.nlink = dec.u32();
  return a;
}

inline void encode_cap(rpc::XdrEncoder& enc, const crypto::Capability& c) {
  enc.u64(c.segment_id);
  enc.u64(c.base);
  enc.u64(c.length);
  enc.u32(static_cast<std::uint32_t>(c.perm));
  enc.u32(c.generation);
  enc.u64(c.mac);
}

inline crypto::Capability decode_cap(rpc::XdrDecoder& dec) {
  crypto::Capability c;
  c.segment_id = dec.u64();
  c.base = dec.u64();
  c.length = dec.u64();
  c.perm = static_cast<crypto::SegPerm>(dec.u32());
  c.generation = dec.u32();
  c.mac = dec.u64();
  return c;
}

inline void encode_ref(rpc::XdrEncoder& enc, const cache::RemoteRef& r) {
  enc.u64(r.seg_id);
  enc.u64(r.va);
  enc.u64(r.len);
  encode_cap(enc, r.cap);
}

inline cache::RemoteRef decode_ref(rpc::XdrDecoder& dec) {
  cache::RemoteRef r;
  r.seg_id = dec.u64();
  r.va = dec.u64();
  r.len = dec.u64();
  r.cap = decode_cap(dec);
  return r;
}

// End-to-end checksum over read payloads. Servers that deliver data via
// unacknowledged RDMA write (DAFS direct reads, NFS-hybrid) stamp this into
// the control reply; a dropped data frame then shows up as a mismatch when
// the client checksums the landed bytes, instead of as silent corruption.
inline std::uint32_t data_checksum(std::span<const std::byte> data) {
  return rpc::checksum32(data);
}

// --- ORDMA write-path messages (kPutCommit / kInvalidate) -------------------

// Commit request for an optimistic put: the client already RDMA-wrote
// `len` bytes at offset `off` into the server cache block (fh, fbn); the
// checksum lets the server verify against the NIC's last-put record that
// exactly those bytes landed (and weren't overtaken by a competing put).
struct PutCommitArgs {
  std::uint64_t fh = 0;
  std::uint64_t fbn = 0;       // server file block number
  std::uint32_t off = 0;       // byte offset within the server block
  std::uint32_t len = 0;
  std::uint32_t cksum = 0;     // data_checksum of the put payload
  std::uint32_t flags = 0;     // kPutFlagWriteback etc.
};

inline void encode_put_commit(rpc::XdrEncoder& enc, const PutCommitArgs& a) {
  enc.u64(a.fh);
  enc.u64(a.fbn);
  enc.u32(a.off);
  enc.u32(a.len);
  enc.u32(a.cksum);
  enc.u32(a.flags);
}

inline PutCommitArgs decode_put_commit(rpc::XdrDecoder& dec) {
  PutCommitArgs a;
  a.fh = dec.u64();
  a.fbn = dec.u64();
  a.off = dec.u32();
  a.len = dec.u32();
  a.cksum = dec.u32();
  a.flags = dec.u32();
  return a;
}

// Server→client invalidation: block (ino, fbn) committed `version`; any
// cached copy tagged with an older version is stale.
struct InvalidateMsg {
  std::uint64_t ino = 0;
  std::uint64_t fbn = 0;       // server file block number
  std::uint64_t version = 0;
};

inline void encode_invalidate(rpc::XdrEncoder& enc, const InvalidateMsg& m) {
  enc.u64(m.ino);
  enc.u64(m.fbn);
  enc.u64(m.version);
}

inline InvalidateMsg decode_invalidate(rpc::XdrDecoder& dec) {
  InvalidateMsg m;
  m.ino = dec.u64();
  m.fbn = dec.u64();
  m.version = dec.u64();
  return m;
}

// Piggybacked reference record with the block's commit version (coherence
// mode): (fbn u64, ref, version u64). The read reply flags versioned
// records by setting kVersionedRefsBit in the ref count.
inline constexpr std::uint32_t kVersionedRefsBit = 0x80000000u;

struct VersionedRef {
  std::uint64_t fbn = 0;
  cache::RemoteRef ref;
  std::uint64_t version = 0;
};

inline void encode_versioned_ref(rpc::XdrEncoder& enc,
                                 const VersionedRef& r) {
  enc.u64(r.fbn);
  encode_ref(enc, r.ref);
  enc.u64(r.version);
}

inline VersionedRef decode_versioned_ref(rpc::XdrDecoder& dec) {
  VersionedRef r;
  r.fbn = dec.u64();
  r.ref = decode_ref(dec);
  r.version = dec.u64();
  return r;
}

}  // namespace ordma::nas
