// Shared XDR encode/decode helpers for NAS protocol messages: file
// attributes, capabilities and remote memory references.
#pragma once

#include "cache/client_cache.h"
#include "crypto/capability.h"
#include "fs/server_fs.h"
#include "rpc/xdr.h"

namespace ordma::nas {

inline void encode_attr(rpc::XdrEncoder& enc, const fs::Attr& a) {
  enc.u64(a.ino);
  enc.u32(static_cast<std::uint32_t>(a.type));
  enc.u64(a.size);
  enc.i64(a.mtime.ns);
  enc.u32(a.nlink);
}

inline fs::Attr decode_attr(rpc::XdrDecoder& dec) {
  fs::Attr a;
  a.ino = dec.u64();
  a.type = static_cast<fs::FileType>(dec.u32());
  a.size = dec.u64();
  a.mtime = SimTime{dec.i64()};
  a.nlink = dec.u32();
  return a;
}

inline void encode_cap(rpc::XdrEncoder& enc, const crypto::Capability& c) {
  enc.u64(c.segment_id);
  enc.u64(c.base);
  enc.u64(c.length);
  enc.u32(static_cast<std::uint32_t>(c.perm));
  enc.u32(c.generation);
  enc.u64(c.mac);
}

inline crypto::Capability decode_cap(rpc::XdrDecoder& dec) {
  crypto::Capability c;
  c.segment_id = dec.u64();
  c.base = dec.u64();
  c.length = dec.u64();
  c.perm = static_cast<crypto::SegPerm>(dec.u32());
  c.generation = dec.u32();
  c.mac = dec.u64();
  return c;
}

inline void encode_ref(rpc::XdrEncoder& enc, const cache::RemoteRef& r) {
  enc.u64(r.seg_id);
  enc.u64(r.va);
  enc.u64(r.len);
  encode_cap(enc, r.cap);
}

inline cache::RemoteRef decode_ref(rpc::XdrDecoder& dec) {
  cache::RemoteRef r;
  r.seg_id = dec.u64();
  r.va = dec.u64();
  r.len = dec.u64();
  r.cap = decode_cap(dec);
  return r;
}

// End-to-end checksum over read payloads. Servers that deliver data via
// unacknowledged RDMA write (DAFS direct reads, NFS-hybrid) stamp this into
// the control reply; a dropped data frame then shows up as a mismatch when
// the client checksums the landed bytes, instead of as silent corruption.
inline std::uint32_t data_checksum(std::span<const std::byte> data) {
  return rpc::checksum32(data);
}

}  // namespace ordma::nas
