// The DAFS kernel server: VI transport, open delegations, server-initiated
// RDMA for direct reads/writes, and — in ODAFS mode — lazy export of file
// cache blocks into the NIC's private 64-bit address space with remote
// references piggybacked on every read reply (§4.2.1).
//
// Export lifecycle: a cache block is exported on first read, its reference
// handed to clients, and its segment revoked the moment the buffer cache
// evicts or invalidates the block — making any stale client reference fault
// at the NIC instead of reading reused memory.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "fs/server_fs.h"
#include "host/host.h"
#include "msg/vi.h"
#include "nas/dafs/dafs_proto.h"
#include "rpc/xdr.h"

namespace ordma::nas::dafs {

struct DafsServerConfig {
  std::uint32_t listen_port = kDafsListenPort;
  // ODAFS: export cache blocks and piggyback references on read replies.
  bool piggyback_refs = false;
  // Completion discipline for the server's VI endpoints (§5.2 compares
  // interrupt-driven and polling servers).
  msg::Completion completion = msg::Completion::block;
};

class DafsServer {
 public:
  DafsServer(host::Host& host, fs::ServerFs& fs, DafsServerConfig cfg = {});
  DafsServer(const DafsServer&) = delete;
  DafsServer& operator=(const DafsServer&) = delete;

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t blocks_exported() const { return exported_; }
  host::Host& host() { return host_; }
  // Duplicate (retransmitted) requests answered from the per-connection
  // reply cache / dropped because the original is still executing.
  std::uint64_t dup_replays() const { return dup_replays_; }
  std::uint64_t dup_drops() const { return dup_drops_; }

 private:
  // Per-connection duplicate-request suppression: req_ids are unique per
  // connection, so a retransmission of an executing request is dropped and
  // one of a completed request is answered from the cached reply without
  // re-executing the handler. Shared with the spawned request handlers so
  // it survives however long they run.
  struct ConnCache {
    std::unordered_set<std::uint32_t> in_progress;
    std::unordered_map<std::uint32_t, net::Buffer> done;
    std::deque<std::uint32_t> order;  // FIFO eviction of `done`
  };
  static constexpr std::size_t kConnCacheCap = 256;
  static constexpr Bytes kMaxCachedReply = KiB(64);

  sim::Task<void> accept_loop();
  sim::Task<void> serve_connection(std::unique_ptr<msg::ViConnection> conn);
  // `trace_op` is the request message's trace context; replies and all
  // server-side work (fs, disk, RDMA) are charged against it.
  sim::Task<net::Buffer> handle(msg::ViConnection& conn, net::Buffer msg,
                                obs::OpId trace_op);

  sim::Task<void> do_read(msg::ViConnection& conn, rpc::XdrDecoder& dec,
                          rpc::XdrEncoder& out, bool direct,
                          obs::OpId trace_op);
  sim::Task<void> do_write(msg::ViConnection& conn, rpc::XdrDecoder& dec,
                           rpc::XdrEncoder& out, bool direct,
                           obs::OpId trace_op);
  sim::Task<void> do_read_batch(msg::ViConnection& conn,
                                rpc::XdrDecoder& dec, rpc::XdrEncoder& out,
                                obs::OpId trace_op);

  // Ensure a cache block is exported; append (fbn, ref) to `out`.
  void piggyback(rpc::XdrEncoder& out, fs::Ino ino, std::uint64_t fbn,
                 fs::CacheBlock& blk);
  // Export the file system's attribute region (once) and encode a remote
  // reference to `ino`'s record (the ODAFS attribute extension).
  void encode_attr_ref(rpc::XdrEncoder& out, fs::Ino ino);

  host::Host& host_;
  fs::ServerFs& fs_;
  DafsServerConfig cfg_;
  msg::ViListener listener_;
  std::uint64_t served_ = 0;
  std::uint64_t exported_ = 0;
  std::uint64_t dup_replays_ = 0;
  std::uint64_t dup_drops_ = 0;
  std::optional<crypto::Capability> attr_region_cap_;
};

}  // namespace ordma::nas::dafs
