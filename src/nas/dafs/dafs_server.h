// The DAFS kernel server: VI transport, open delegations, server-initiated
// RDMA for direct reads/writes, and — in ODAFS mode — lazy export of file
// cache blocks into the NIC's private 64-bit address space with remote
// references piggybacked on every read reply (§4.2.1).
//
// Export lifecycle: a cache block is exported on first read, its reference
// handed to clients, and its segment revoked the moment the buffer cache
// evicts or invalidates the block — making any stale client reference fault
// at the NIC instead of reading reused memory.
//
// ORDMA write path (writable_refs): blocks are exported read-write, clients
// RDMA-write into them and commit with kPutCommit; the server verifies the
// NIC's last-put record (O(1)) instead of touching the data, marks the block
// dirty and defers the disk flush. With `coherence` on, a per-block
// version/holder map drives server-initiated invalidations to every other
// client caching the block, so no client ever reads a stale committed
// version.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "fs/server_fs.h"
#include "host/host.h"
#include "msg/vi.h"
#include "nas/dafs/dafs_proto.h"
#include "rpc/xdr.h"
#include "sim/event.h"

namespace ordma::nas::dafs {

struct DafsServerConfig {
  std::uint32_t listen_port = kDafsListenPort;
  // ODAFS: export cache blocks and piggyback references on read replies.
  bool piggyback_refs = false;
  // Completion discipline for the server's VI endpoints (§5.2 compares
  // interrupt-driven and polling servers).
  msg::Completion completion = msg::Completion::block;
  // ORDMA write path: export cache blocks read-write and accept kPutCommit
  // for optimistic client puts into them.
  bool writable_refs = false;
  // Multi-client sharing: per-block version/holder map, versioned
  // piggybacked refs, and invalidations to conflicting holders.
  bool coherence = false;
  // Deferred flush of put-dirtied cache blocks (0 = rely on eviction
  // write-back and explicit sync only).
  Duration flush_interval{0};
  // Invalidation delivery policy: retransmit until acked, give up (and
  // drop the holder) after this many attempts.
  unsigned inval_max_attempts = 4;
  Duration inval_timeout = usec(300);
};

class DafsServer {
 public:
  DafsServer(host::Host& host, fs::ServerFs& fs, DafsServerConfig cfg = {});
  DafsServer(const DafsServer&) = delete;
  DafsServer& operator=(const DafsServer&) = delete;

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t blocks_exported() const { return exported_; }
  host::Host& host() { return host_; }
  // Duplicate (retransmitted) requests answered from the per-connection
  // reply cache / dropped because the original is still executing.
  std::uint64_t dup_replays() const { return dup_replays_; }
  std::uint64_t dup_drops() const { return dup_drops_; }
  // --- ORDMA write path / coherence counters -------------------------------
  std::uint64_t put_commits() const { return put_commits_; }
  std::uint64_t put_rejects() const { return put_rejects_; }
  std::uint64_t invalidations_sent() const { return invals_sent_; }
  std::uint64_t invalidation_giveups() const { return inval_giveups_; }
  std::uint64_t wb_syncs() const { return wb_syncs_; }

  // Observer fired at each write's commit point (after invalidations have
  // been acknowledged, before the reply is sent): both optimistic put
  // commits and RPC writes. The coherence oracle hangs off this.
  // `cksum` is the data_checksum of the block's bytes captured atomically
  // at the version bump, so an oracle can map each commit to the content
  // it committed.
  using CommitObserver =
      std::function<void(fs::Ino ino, std::uint64_t fbn,
                         std::uint64_t version, std::uint64_t writer_conn,
                         SimTime when, std::uint32_t cksum)>;
  void set_commit_observer(CommitObserver obs) { observer_ = std::move(obs); }

  // Current commit version of a block (0 = never written under coherence).
  std::uint64_t block_version(fs::Ino ino, std::uint64_t fbn) const {
    auto it = share_.find(fs::CacheKey{ino, fbn});
    return it == share_.end() ? 0 : it->second.version;
  }

 private:
  // Per-connection duplicate-request suppression: req_ids are unique per
  // connection, so a retransmission of an executing request is dropped and
  // one of a completed request is answered from the cached reply without
  // re-executing the handler. Shared with the spawned request handlers so
  // it survives however long they run.
  struct ConnCache {
    std::unordered_set<std::uint32_t> in_progress;
    std::unordered_map<std::uint32_t, net::Buffer> done;
    std::deque<std::uint32_t> order;  // FIFO eviction of `done`
  };
  static constexpr std::size_t kConnCacheCap = 256;
  static constexpr Bytes kMaxCachedReply = KiB(64);

  // A registered client connection: the endpoint for server-initiated
  // invalidations, plus the waiter table matching invalidation acks back
  // to their send loops. Lives as long as the server (connections never
  // close in the simulated workloads).
  struct SrvWaiter {
    explicit SrvWaiter(sim::Engine& eng) : done(eng) {}
    sim::Event<> done;
  };
  struct ConnState {
    std::uint64_t id = 0;
    msg::ViConnection* conn = nullptr;
    std::uint32_t next_srv_req = 1;
    std::unordered_map<std::uint32_t, std::unique_ptr<SrvWaiter>> waiting;
  };

  // Per-block sharing state: the commit version and which connections hold
  // (or held) a cached copy. Holder registration happens on read; holders
  // that fail to ack an invalidation are dropped.
  struct ShareEntry {
    std::uint64_t version = 0;
    std::unordered_set<std::uint64_t> holders;
  };

  sim::Task<void> accept_loop();
  sim::Task<void> serve_connection(std::unique_ptr<msg::ViConnection> conn);
  // `trace_op` is the request message's trace context; replies and all
  // server-side work (fs, disk, RDMA) are charged against it.
  sim::Task<net::Buffer> handle(msg::ViConnection& conn, net::Buffer msg,
                                obs::OpId trace_op, std::uint64_t conn_id);

  sim::Task<void> do_read(msg::ViConnection& conn, rpc::XdrDecoder& dec,
                          rpc::XdrEncoder& out, bool direct,
                          obs::OpId trace_op, std::uint64_t conn_id);
  sim::Task<void> do_write(msg::ViConnection& conn, rpc::XdrDecoder& dec,
                           rpc::XdrEncoder& out, bool direct,
                           obs::OpId trace_op, std::uint64_t conn_id);
  sim::Task<void> do_read_batch(msg::ViConnection& conn,
                                rpc::XdrDecoder& dec, rpc::XdrEncoder& out,
                                obs::OpId trace_op);
  sim::Task<void> do_put_commit(msg::ViConnection& conn,
                                rpc::XdrDecoder& dec, rpc::XdrEncoder& out,
                                obs::OpId trace_op, std::uint64_t conn_id);

  // Bump the block's version and invalidate every holder except the
  // writer; returns the new version. Fires the commit observer.
  sim::Task<std::uint64_t> commit_block(fs::Ino ino, std::uint64_t fbn,
                                        std::uint64_t writer_conn,
                                        obs::OpId trace_op);
  // Deliver one invalidation (bounded retransmit); false = gave up.
  sim::Task<bool> send_invalidate(std::uint64_t conn_id, fs::Ino ino,
                                  std::uint64_t fbn, std::uint64_t version,
                                  obs::OpId trace_op);
  sim::Task<void> flush_loop();

  // Ensure a cache block is exported; append (fbn, ref[, version]) to
  // `out`. `version` is the block's commit version captured by the caller
  // (coherence mode; ignored otherwise).
  void piggyback(rpc::XdrEncoder& out, fs::Ino ino, std::uint64_t fbn,
                 fs::CacheBlock& blk, std::uint64_t version);
  // Export the file system's attribute region (once) and encode a remote
  // reference to `ino`'s record (the ODAFS attribute extension).
  void encode_attr_ref(rpc::XdrEncoder& out, fs::Ino ino);

  host::Host& host_;
  fs::ServerFs& fs_;
  DafsServerConfig cfg_;
  msg::ViListener listener_;
  std::uint64_t served_ = 0;
  std::uint64_t exported_ = 0;
  std::uint64_t dup_replays_ = 0;
  std::uint64_t dup_drops_ = 0;
  std::optional<crypto::Capability> attr_region_cap_;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<ConnState>> conns_;
  std::unordered_map<fs::CacheKey, ShareEntry, fs::CacheKeyHash> share_;
  CommitObserver observer_;

  std::uint64_t put_commits_ = 0;
  std::uint64_t put_rejects_ = 0;
  std::uint64_t invals_sent_ = 0;
  std::uint64_t inval_giveups_ = 0;
  std::uint64_t wb_syncs_ = 0;
};

}  // namespace ordma::nas::dafs
