// DAFS-style protocol over VI (the DAFS kernel server [21] + user-level
// client [20] pair). Message framing (all XDR):
//
//   request:  req_id u32 | proc u32 | args...
//   reply:    req_id u32 | status u32 | results... [| inline data]
//
// Read replies may piggyback remote memory references to the server cache
// blocks covering the read (ODAFS, §4.2.1): count u32, then per ref the
// server file-block index u64 and the reference (va, len, capability).
#pragma once

#include <cstdint>

namespace ordma::nas::dafs {

inline constexpr std::uint32_t kDafsListenPort = 2050;

enum Proc : std::uint32_t {
  kOpen = 1,         // (path) → (fh u64, size u64, delegation u32, blk u32)
  kClose = 2,        // (fh) → ()
  kReadInline = 3,   // (fh, off u64, len u32) → (n u32, refs | data raw)
  kReadDirect = 4,   // (fh, off, len, client va u64, cap) → (n u32, refs)
  kWriteInline = 5,  // (fh, off u64, data opaque) → (n u32)
  kWriteDirect = 6,  // (fh, off, len u32, client va u64, cap) → (n u32)
  kGetattr = 7,      // (fh) → (attr)
  kCreate = 8,       // (path) → (fh u64, size u64)
  kRemove = 9,       // (path) → ()
  kReadBatch = 10,   // (count u32, [fh,off,len,va,cap]...) → ([n u32]...)
  // ORDMA write path (§4 capability design, optimistic puts): the client
  // RDMA-writes into an exported server cache block, then asks the server
  // to commit what landed. The server verifies the NIC's last-put record
  // (O(1), no per-byte CPU) instead of touching the data.
  kPutCommit = 11,   // (PutCommitArgs) → (n u32, version u64)
  // Server→client coherence traffic. These ride the data connection with
  // the high req_id bit set (kSrvReqBit) so the client's reply-matching
  // loop can tell them from RPC replies. kInvalidateAck is the client's
  // response frame; it carries no reply of its own.
  kInvalidate = 12,     // (InvalidateMsg) — server-initiated
  kInvalidateAck = 13,  // (echoed server req_id | proc) — client → server
};

// Server-initiated frames use req_ids with this bit set; client-chosen
// req_ids start at 1 and never reach it.
inline constexpr std::uint32_t kSrvReqBit = 0x80000000u;

// PutCommitArgs flag bits.
inline constexpr std::uint32_t kPutFlagWriteback = 1u;  // write-back flush

}  // namespace ordma::nas::dafs
