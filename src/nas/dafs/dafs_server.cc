#include "nas/dafs/dafs_server.h"

#include <algorithm>
#include <array>
#include <vector>

#include "nas/wire_util.h"

namespace ordma::nas::dafs {

namespace {
std::uint32_t err_u32(Errc e) { return static_cast<std::uint32_t>(e); }
}

DafsServer::DafsServer(host::Host& host, fs::ServerFs& fs,
                       DafsServerConfig cfg)
    : host_(host),
      fs_(fs),
      cfg_(cfg),
      listener_(host, cfg.listen_port, cfg.completion) {
  // Revoke a block's exported segment the moment its memory is reused:
  // stale client references then fault at the NIC instead of reading
  // someone else's data (§4.2 consistency mechanism).
  fs_.cache().set_evict_hook([this](fs::CacheBlock& blk) {
    if (blk.export_seg != 0) {
      host_.nic().revoke_segment(blk.export_seg);
      blk.export_seg = 0;
    }
  });
  host_.engine().spawn(accept_loop());
  if (cfg_.flush_interval.ns > 0) host_.engine().spawn(flush_loop());
}

sim::Task<void> DafsServer::flush_loop() {
  // Deferred write-back of put-dirtied blocks: committed puts sit dirty in
  // the buffer cache until the periodic sweep (or eviction) flushes them.
  for (;;) {
    co_await host_.engine().delay(cfg_.flush_interval);
    auto st = co_await fs_.cache().sync();
    if (st.ok()) ++wb_syncs_;
  }
}

sim::Task<void> DafsServer::accept_loop() {
  for (;;) {
    auto conn = co_await listener_.accept();
    host_.engine().spawn(serve_connection(std::move(conn)));
  }
}

sim::Task<void> DafsServer::serve_connection(
    std::unique_ptr<msg::ViConnection> conn) {
  // Requests are served concurrently (they may block on the disk); each
  // handler sends its own reply on the shared connection and clients match
  // replies to requests by req_id.
  msg::ViConnection& c = *conn;
  auto cache = std::make_shared<ConnCache>();
  auto state = std::make_shared<ConnState>();
  state->id = next_conn_id_++;
  state->conn = &c;
  conns_.emplace(state->id, state);
  for (;;) {
    nic::Nic::GmMessage msg = co_await c.recv_msg();
    {
      // Frames answering a server-initiated request (req_id high bit) are
      // matched to their waiter right here — they are acks, not requests:
      // no dedup cache, no handler, no reply.
      rpc::XdrDecoder peek(msg.data);
      const std::uint32_t rid = peek.u32();
      const std::uint32_t proc = peek.u32();
      if (peek.ok() && (rid & kSrvReqBit) != 0) {
        if (proc == kInvalidateAck) {
          host_.flight().record(host_.engine().now().ns,
                                obs::flight::Ev::inval_ack, rid);
          if (auto it = state->waiting.find(rid);
              it != state->waiting.end() && !it->second->done.is_set()) {
            it->second->done.set();  // re-acked duplicates are ignored
          }
        }
        continue;
      }
    }
    host_.engine().spawn([](DafsServer& srv, msg::ViConnection& c,
                            std::shared_ptr<ConnCache> cache,
                            std::shared_ptr<ConnState> state,
                            nic::Nic::GmMessage msg) -> sim::Task<void> {
      const obs::OpId op = msg.trace_op;
      std::uint32_t req_id = 0;
      {
        rpc::XdrDecoder peek(msg.data);
        req_id = peek.u32();
        if (!peek.ok()) co_return;  // runt frame
      }
      if (auto it = cache->done.find(req_id); it != cache->done.end()) {
        // Retransmission of a completed request: replay the cached reply
        // without re-executing the handler (mutations must not re-run).
        ++srv.dup_replays_;
        co_await c.send(net::Buffer(it->second), op);
        co_return;
      }
      if (!cache->in_progress.insert(req_id).second) {
        ++srv.dup_drops_;  // original still executing; its reply will do
        co_return;
      }
      net::Buffer reply =
          co_await srv.handle(c, std::move(msg.data), op, state->id);
      cache->in_progress.erase(req_id);
      // Large replies (inline read data) are not worth caching; those
      // requests are idempotent and simply re-execute on a late duplicate.
      if (reply.size() <= kMaxCachedReply) {
        cache->done.emplace(req_id, net::Buffer(reply));
        cache->order.push_back(req_id);
        while (cache->order.size() > kConnCacheCap) {
          cache->done.erase(cache->order.front());
          cache->order.pop_front();
        }
      }
      co_await c.send(std::move(reply), op);
    }(*this, c, cache, state, std::move(msg)));
  }
}

void DafsServer::piggyback(rpc::XdrEncoder& out, fs::Ino ino,
                           std::uint64_t fbn, fs::CacheBlock& blk,
                           std::uint64_t version) {
  // With the write path on, blocks are exported read-write so the same
  // reference serves gets and optimistic puts. Coherence appends the
  // block's commit version to each record (kVersionedRefsBit signals the
  // wider layout so plain ODAFS replies keep their exact wire size).
  const auto perm = cfg_.writable_refs ? crypto::SegPerm::read_write
                                       : crypto::SegPerm::read;
  if (blk.export_seg == 0) {
    auto cap = host_.nic().export_segment(fs_.cache().space(), blk.va,
                                          fs_.block_size(), perm,
                                          /*pin_now=*/false);
    if (!cap.ok()) return;  // can't export (e.g. TPT pressure): no ref
    blk.export_seg = cap.value().segment_id;
    ++exported_;
    out.u64(fbn);
    encode_ref(out, cache::RemoteRef{cap.value().segment_id,
                                     cap.value().base, fs_.block_size(),
                                     cap.value()});
    if (cfg_.coherence) out.u64(version);
    return;
  }
  auto cap = host_.nic().capability_for(blk.export_seg);
  if (!cap.ok()) return;
  out.u64(fbn);
  encode_ref(out, cache::RemoteRef{blk.export_seg, cap.value().base,
                                   fs_.block_size(), cap.value()});
  if (cfg_.coherence) out.u64(version);
}

void DafsServer::encode_attr_ref(rpc::XdrEncoder& out, fs::Ino ino) {
  if (!cfg_.piggyback_refs) {
    out.u32(0);
    return;
  }
  if (!attr_region_cap_) {
    auto cap = host_.nic().export_segment(
        host_.kernel_as(), fs_.attr_region(), fs_.attr_region_len(),
        crypto::SegPerm::read, /*pin_now=*/false);
    if (!cap.ok()) {
      out.u32(0);
      return;
    }
    attr_region_cap_ = cap.value();
  }
  auto off = fs_.attr_offset(ino);
  if (!off.ok()) {
    out.u32(0);
    return;
  }
  out.u32(1);
  out.u64(attr_region_cap_->base + off.value());
  encode_cap(out, *attr_region_cap_);
}

sim::Task<void> DafsServer::do_read(msg::ViConnection& conn,
                                    rpc::XdrDecoder& dec,
                                    rpc::XdrEncoder& out, bool direct,
                                    obs::OpId trace_op,
                                    std::uint64_t conn_id) {
  const fs::Ino ino = dec.u64();
  const Bytes off = dec.u64();
  const Bytes len = dec.u32();
  mem::Vaddr client_va = 0;
  crypto::Capability client_cap;
  if (direct) {
    client_va = dec.u64();
    client_cap = decode_cap(dec);
  }

  auto attr = fs_.getattr(ino);
  if (!attr.ok()) {
    out.u32(err_u32(attr.code()));
    co_return;
  }
  const Bytes n =
      off >= attr.value().size
          ? 0
          : std::min<Bytes>(len, attr.value().size - off);

  // Walk the covered cache blocks: collect data and (in ODAFS mode) refs.
  std::vector<std::byte> data(n);
  rpc::XdrEncoder refs;
  std::uint32_t ref_count = 0;
  const Bytes bs = fs_.block_size();
  Bytes done = 0;
  while (done < n) {
    const Bytes pos = off + done;
    const std::uint64_t fbn = pos / bs;
    const Bytes boff = pos % bs;
    const Bytes chunk = std::min<Bytes>(n - done, bs - boff);
    auto blk = co_await fs_.get_cache_block(ino, fbn, /*for_write=*/false,
                                            trace_op);
    if (!blk.ok()) {
      out.u32(err_u32(blk.code()));
      co_return;
    }
    // Coherence: capture the commit version BEFORE reading the bytes (both
    // in the same instant — no await point between them), so the version
    // tag can never be newer than the data it describes, and register this
    // connection as a holder so later writers invalidate it.
    std::uint64_t version = 0;
    if (cfg_.coherence) {
      auto& se = share_[fs::CacheKey{ino, fbn}];
      version = se.version;
      se.holders.insert(conn_id);
    }
    ORDMA_CHECK(host_.kernel_as()
                    .read(blk.value()->va + boff,
                          std::span<std::byte>(data.data() + done, chunk))
                    .ok());
    if (cfg_.piggyback_refs) {
      const auto before = refs.size();
      piggyback(refs, ino, fbn, *blk.value(), version);
      if (refs.size() > before) ++ref_count;
    }
    done += chunk;
  }

  out.u32(0);  // status ok
  out.u32(static_cast<std::uint32_t>(n));
  // Direct reads deliver the data by unacked RDMA write; the checksum lets
  // the client verify the bytes actually landed (and retry if not).
  out.u32(data_checksum(data));
  out.u32(cfg_.coherence && cfg_.piggyback_refs
              ? (ref_count | kVersionedRefsBit)
              : ref_count);
  const auto ref_bytes = refs.take();
  out.raw(ref_bytes);

  if (direct) {
    if (n > 0) {
      // Reliable in-order delivery: the reply sent right behind the RDMA
      // write reaches the client after the data does, so the server does
      // not wait for the remote ack (the paper's direct read costs 144 us,
      // not an extra round trip).
      auto st = co_await host_.nic().gm_put(
          conn.peer_node(), client_va, net::Buffer::take(std::move(data)),
          client_cap, /*wait_ack=*/false, trace_op);
      ORDMA_CHECK(st.ok());
    }
  } else {
    out.raw(data);
  }
}

sim::Task<void> DafsServer::do_write(msg::ViConnection& conn,
                                     rpc::XdrDecoder& dec,
                                     rpc::XdrEncoder& out, bool direct,
                                     obs::OpId trace_op,
                                     std::uint64_t conn_id) {
  const fs::Ino ino = dec.u64();
  const Bytes off = dec.u64();

  std::vector<std::byte> data;
  if (direct) {
    const Bytes len = dec.u32();
    const mem::Vaddr client_va = dec.u64();
    const crypto::Capability cap = decode_cap(dec);
    // Server-initiated RDMA read pulls the data from the client buffer.
    auto res = co_await host_.nic().gm_get(conn.peer_node(), client_va, len,
                                           cap, trace_op);
    if (!res.ok()) {
      out.u32(err_u32(res.code()));
      co_return;
    }
    const auto v = res.value().view();
    data.assign(v.begin(), v.end());
  } else {
    const auto v = dec.opaque();
    data.assign(v.begin(), v.end());
    // Inline write data is staged through kernel buffers.
    co_await host_.copy(data.size(), trace_op);
  }

  auto n = co_await fs_.write(ino, off, data, trace_op);
  if (!n.ok()) {
    out.u32(err_u32(n.code()));
    co_return;
  }
  if (cfg_.coherence && n.value() > 0) {
    // RPC writes commit through the same per-block protocol as puts: bump
    // the version and invalidate every other holder before replying.
    const Bytes bs = fs_.block_size();
    const std::uint64_t first = off / bs;
    const std::uint64_t last = (off + n.value() - 1) / bs;
    for (std::uint64_t fbn = first; fbn <= last; ++fbn) {
      co_await commit_block(ino, fbn, conn_id, trace_op);
    }
  }
  out.u32(0);
  out.u32(static_cast<std::uint32_t>(n.value()));
}

sim::Task<void> DafsServer::do_read_batch(msg::ViConnection& conn,
                                          rpc::XdrDecoder& dec,
                                          rpc::XdrEncoder& out,
                                          obs::OpId trace_op) {
  // Batch I/O (§2.2): one request names many (fh, off, len, buffer) tuples;
  // the server satisfies each with an RDMA write, then sends one reply.
  const std::uint32_t count = dec.u32();
  struct Entry {
    fs::Ino ino;
    Bytes off;
    Bytes len;
    mem::Vaddr va;
    crypto::Capability cap;
  };
  std::vector<Entry> entries(count);
  for (auto& e : entries) {
    e.ino = dec.u64();
    e.off = dec.u64();
    e.len = dec.u32();
    e.va = dec.u64();
    e.cap = decode_cap(dec);
  }
  if (!dec.ok()) {
    out.u32(err_u32(Errc::invalid_argument));
    co_return;
  }

  std::vector<std::uint32_t> ns;
  ns.reserve(count);
  for (const auto& e : entries) {
    std::vector<std::byte> data(e.len);
    Bytes n = 0;
    auto attr = fs_.getattr(e.ino);
    if (attr.ok() && e.off < attr.value().size) {
      n = std::min<Bytes>(e.len, attr.value().size - e.off);
      auto r = co_await fs_.read(e.ino, e.off, {data.data(), n}, trace_op);
      if (!r.ok()) n = 0;
    }
    data.resize(n);
    if (n > 0) {
      auto st = co_await host_.nic().gm_put(
          conn.peer_node(), e.va, net::Buffer::take(std::move(data)), e.cap,
          /*wait_ack=*/true, trace_op);
      if (!st.ok()) n = 0;
    }
    ns.push_back(static_cast<std::uint32_t>(n));
  }
  out.u32(0);
  for (auto n : ns) out.u32(n);
}

sim::Task<void> DafsServer::do_put_commit(msg::ViConnection& conn,
                                          rpc::XdrDecoder& dec,
                                          rpc::XdrEncoder& out,
                                          obs::OpId trace_op,
                                          std::uint64_t conn_id) {
  const PutCommitArgs a = decode_put_commit(dec);
  if (!dec.ok() || a.len == 0 ||
      static_cast<Bytes>(a.off) + a.len > fs_.block_size()) {
    out.u32(err_u32(Errc::invalid_argument));
    co_return;
  }
  if (!cfg_.writable_refs) {
    out.u32(err_u32(Errc::not_supported));
    co_return;
  }
  const fs::Ino ino = a.fh;
  const auto reject = [&](Errc e) {
    ++put_rejects_;
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::put_reject, ino, a.fbn,
                          static_cast<std::uint32_t>(e));
    out.u32(err_u32(e));
  };

  // The put must have landed in the (still resident, still exported) cache
  // block this reference named. `revoked` tells the client its reference
  // is dead — fall back to an RPC write; `io_error` means the put itself
  // went missing or was overtaken (fault, loss, concurrent writer) — the
  // client simply replays the put.
  fs::CacheBlock* blk = fs_.cache().peek(fs::CacheKey{ino, a.fbn});
  if (blk == nullptr || !blk->valid || blk->export_seg == 0) {
    reject(Errc::revoked);
    co_return;
  }
  auto cap = host_.nic().capability_for(blk->export_seg);
  if (!cap.ok()) {
    reject(Errc::revoked);
    co_return;
  }
  const nic::Nic::PutRecord* rec = host_.nic().last_put(blk->export_seg);
  if (rec == nullptr || rec->src != conn.peer_node() ||
      rec->va != cap.value().base + a.off || rec->len != a.len ||
      rec->cksum != a.cksum) {
    reject(Errc::io_error);
    co_return;
  }

  // Verified by the NIC's placement record: commit without ever touching
  // the data on the host CPU. The block stays dirty in the cache for the
  // deferred flush.
  fs::BufferCache::pin(*blk);
  fs_.cache().mark_dirty(*blk);
  blk->valid_len = std::max<Bytes>(blk->valid_len, a.off + a.len);
  auto st = fs_.note_put_commit(ino, a.fbn, a.off + a.len);
  fs::BufferCache::unpin(*blk);
  if (!st.ok()) {
    reject(st.code());
    co_return;
  }
  ++put_commits_;
  std::uint64_t version = 0;
  if (cfg_.coherence) {
    version = co_await commit_block(ino, a.fbn, conn_id, trace_op);
  }
  out.u32(0);
  out.u32(a.len);
  out.u64(version);
}

sim::Task<std::uint64_t> DafsServer::commit_block(fs::Ino ino,
                                                  std::uint64_t fbn,
                                                  std::uint64_t writer_conn,
                                                  obs::OpId trace_op) {
  const fs::CacheKey key{ino, fbn};
  const std::uint64_t version = ++share_[key].version;
  // Content fingerprint for the oracle, captured at the bump instant (the
  // commit's content) — later puts can overwrite the block while we await
  // invalidation acks below.
  std::uint32_t cksum = 0;
  if (observer_) {
    if (const auto* blk = fs_.cache().peek(key);
        blk != nullptr && blk->valid && blk->valid_len > 0) {
      std::vector<std::byte> bytes(blk->valid_len);
      ORDMA_CHECK(host_.kernel_as().read(blk->va, bytes).ok());
      cksum = data_checksum(bytes);
    }
  }
  // Snapshot the holders (sorted: deterministic delivery order) and
  // invalidate everyone but the writer BEFORE declaring the commit, so no
  // stale cached copy survives past the commit point. share_ may rehash
  // while we await acks, so re-look-up instead of holding a reference.
  std::vector<std::uint64_t> holders;
  {
    const auto& se = share_[key];
    holders.assign(se.holders.begin(), se.holders.end());
  }
  std::sort(holders.begin(), holders.end());
  for (const auto h : holders) {
    if (h == writer_conn) continue;
    if (!co_await send_invalidate(h, ino, fbn, version, trace_op)) {
      share_[key].holders.erase(h);  // unresponsive: stop notifying it
    }
  }
  if (writer_conn != 0) share_[key].holders.insert(writer_conn);
  host_.flight().record(host_.engine().now().ns,
                        obs::flight::Ev::put_commit, ino, fbn,
                        static_cast<std::uint32_t>(version));
  if (observer_) {
    observer_(ino, fbn, version, writer_conn, host_.engine().now(), cksum);
  }
  co_return version;
}

sim::Task<bool> DafsServer::send_invalidate(std::uint64_t conn_id,
                                            fs::Ino ino, std::uint64_t fbn,
                                            std::uint64_t version,
                                            obs::OpId trace_op) {
  auto cit = conns_.find(conn_id);
  if (cit == conns_.end()) co_return true;  // connection gone: nothing holds
  auto cs = cit->second;
  const std::uint32_t rid = kSrvReqBit | cs->next_srv_req++;
  auto waiter = std::make_unique<SrvWaiter>(host_.engine());
  SrvWaiter& w = *waiter;
  cs->waiting.emplace(rid, std::move(waiter));

  rpc::XdrEncoder enc;
  enc.u32(rid);
  enc.u32(kInvalidate);
  encode_invalidate(enc, InvalidateMsg{ino, fbn, version});
  const net::Buffer frame = enc.finish();

  // Lossy network: retransmit the invalidation (same server req_id — the
  // client side is idempotent and re-acks) a bounded number of times, then
  // give up and drop the holder: its next read re-registers it.
  bool acked = false;
  for (unsigned attempt = 1; attempt <= cfg_.inval_max_attempts; ++attempt) {
    ++invals_sent_;
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::inval_send, ino, fbn, attempt);
    co_await cs->conn->send(net::Buffer(frame), trace_op);
    if (co_await w.done.wait_for(cfg_.inval_timeout)) {
      acked = true;
      break;
    }
  }
  cs->waiting.erase(rid);
  if (!acked) ++inval_giveups_;
  co_return acked;
}

sim::Task<net::Buffer> DafsServer::handle(msg::ViConnection& conn,
                                          net::Buffer msg, obs::OpId trace_op,
                                          std::uint64_t conn_id) {
  const auto& cm = host_.costs();
  rpc::XdrDecoder dec(msg);
  const std::uint32_t req_id = dec.u32();
  const std::uint32_t proc = dec.u32();

  co_await host_.cpu().consume_parts(
      trace_op, std::array<sim::Resource::Part, 2>{{
                    {cm.cpu_schedule, "io/sched"},
                    {cm.dafs_server_proc, "io/dafs_server_proc"},
                }});
  ++served_;

  rpc::XdrEncoder out;
  out.u32(req_id);

  switch (proc) {
    case kOpen: {
      const std::string path = dec.str();
      // Server-side path walk.
      fs::Ino cur = fs::ServerFs::kRootIno;
      std::size_t start = 0;
      Status st = Status::Ok();
      while (start < path.size()) {
        const auto slash = path.find('/', start);
        const auto end = slash == std::string::npos ? path.size() : slash;
        if (end > start) {
          auto next = fs_.lookup(cur, path.substr(start, end - start));
          if (!next.ok()) {
            st = next.status();
            break;
          }
          cur = next.value();
        }
        start = end + 1;
      }
      if (!st.ok()) {
        out.u32(err_u32(st.code()));
        break;
      }
      const auto attr = fs_.getattr(cur).value();
      out.u32(0);
      out.u64(attr.ino);
      out.u64(attr.size);
      out.u32(1);  // open delegation granted
      out.u32(static_cast<std::uint32_t>(fs_.block_size()));
      encode_attr_ref(out, cur);
      break;
    }
    case kClose:
      out.u32(0);
      break;
    case kReadInline:
      co_await do_read(conn, dec, out, /*direct=*/false, trace_op, conn_id);
      break;
    case kReadDirect:
      co_await do_read(conn, dec, out, /*direct=*/true, trace_op, conn_id);
      break;
    case kWriteInline:
      co_await do_write(conn, dec, out, /*direct=*/false, trace_op, conn_id);
      break;
    case kWriteDirect:
      co_await do_write(conn, dec, out, /*direct=*/true, trace_op, conn_id);
      break;
    case kPutCommit:
      co_await do_put_commit(conn, dec, out, trace_op, conn_id);
      break;
    case kGetattr: {
      auto attr = fs_.getattr(dec.u64());
      if (!attr.ok()) {
        out.u32(err_u32(attr.code()));
        break;
      }
      out.u32(0);
      encode_attr(out, attr.value());
      break;
    }
    case kCreate: {
      const std::string path = dec.str();
      // Create in the root or a subdirectory (path walk on all but leaf).
      const auto slash = path.rfind('/');
      fs::Ino dir = fs::ServerFs::kRootIno;
      std::string leaf = path;
      if (slash != std::string::npos) {
        leaf = path.substr(slash + 1);
        fs::Ino cur = fs::ServerFs::kRootIno;
        std::size_t start = 0;
        while (start < slash) {
          const auto s2 = path.find('/', start);
          const auto end = std::min(s2 == std::string::npos ? slash : s2,
                                    static_cast<std::size_t>(slash));
          if (end > start) {
            auto next = fs_.lookup(cur, path.substr(start, end - start));
            if (!next.ok()) break;
            cur = next.value();
          }
          start = end + 1;
        }
        dir = cur;
      }
      auto ino = fs_.create(dir, leaf, fs::FileType::regular);
      if (!ino.ok()) {
        out.u32(err_u32(ino.code()));
        break;
      }
      out.u32(0);
      out.u64(ino.value());
      out.u64(0);
      out.u32(static_cast<std::uint32_t>(fs_.block_size()));
      break;
    }
    case kRemove: {
      const std::string path = dec.str();
      if (path.find('/') != std::string::npos) {
        out.u32(err_u32(Errc::not_supported));  // root-level removal only
        break;
      }
      out.u32(err_u32(fs_.remove(fs::ServerFs::kRootIno, path).code()));
      break;
    }
    case kReadBatch:
      co_await do_read_batch(conn, dec, out, trace_op);
      break;
    default:
      out.u32(err_u32(Errc::not_supported));
  }
  co_return out.finish();
}

}  // namespace ordma::nas::dafs
