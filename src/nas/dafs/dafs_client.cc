#include "nas/dafs/dafs_client.h"

#include <algorithm>

#include "nas/wire_util.h"
#include "obs/sampler.h"

namespace ordma::nas::dafs {

DafsClient::DafsClient(host::Host& host, net::NodeId server,
                       DafsClientConfig cfg)
    : host_(host),
      server_(server),
      cfg_(cfg),
      trk_app_(host.name(), "app"),
      trk_rpc_(host.name(), "dafs.rpc") {}

sim::Task<Status> DafsClient::ensure_connected() {
  if (conn_) co_return Status::Ok();
  conn_ = co_await msg::vi_connect(host_, server_, cfg_.listen_port,
                                   cfg_.completion);
  host_.engine().spawn(rx_loop());
  co_return Status::Ok();
}

sim::Task<void> DafsClient::rx_loop() {
  for (;;) {
    net::Buffer msg = co_await conn_->recv();  // pickup charged to reply's op
    rpc::XdrDecoder dec(msg);
    const std::uint32_t req_id = dec.u32();
    if (!dec.ok()) continue;  // runt frame
    if ((req_id & kSrvReqBit) != 0) {
      // Server-initiated frame (cache invalidation). Handled synchronously
      // — the handler must drop/flag stale state before the ack goes back,
      // and the receive loop cannot park on an RPC of its own (replies
      // would never be matched). Retransmitted invalidations re-ack: the
      // handler is idempotent.
      const std::uint32_t proc = dec.u32();
      if (proc == kInvalidate) {
        const InvalidateMsg inv = decode_invalidate(dec);
        if (!dec.ok()) continue;
        ++invalidates_rx_;
        host_.flight().record(host_.engine().now().ns,
                              obs::flight::Ev::inval_recv, inv.ino, inv.fbn,
                              static_cast<std::uint32_t>(inv.version));
        if (on_invalidate_) on_invalidate_(inv.ino, inv.fbn, inv.version);
        rpc::XdrEncoder ack;
        ack.u32(req_id);
        ack.u32(kInvalidateAck);
        co_await conn_->send(ack.finish(), /*trace_op=*/0);
      }
      continue;
    }
    auto it = waiting_.find(req_id);
    if (it == waiting_.end()) continue;   // late/duplicate: already answered
    if (it->second->done.is_set()) continue;  // duplicate of this attempt
    it->second->done.set(msg.slice(4, msg.size() - 4));
  }
}

sim::Task<Result<net::Buffer>> DafsClient::call(std::uint32_t proc,
                                                rpc::XdrEncoder args,
                                                obs::OpId trace_op) {
  co_await ensure_connected();
  const auto& cm = host_.costs();
  co_await host_.cpu_consume(cm.dafs_client_proc, trace_op,
                             "io/dafs_client_proc");

  const std::uint32_t req_id = next_req_id_++;
  rpc::XdrEncoder enc;
  enc.u32(req_id);
  enc.u32(proc);
  enc.raw(net::Buffer(args.finish()).view());
  const net::Buffer msg = enc.finish();

  // Timeout 0 = wait forever (classic behavior on a lossless fabric).
  // Retransmits reuse req_id so the server's per-connection duplicate cache
  // suppresses re-execution and replays the cached reply.
  const bool wait_forever = cfg_.retry.timeout.ns <= 0;
  Duration timeout = cfg_.retry.timeout;
  Result<net::Buffer> out = Errc::timed_out;
  for (unsigned attempt = 1;; ++attempt) {
    auto waiter = std::make_unique<Waiter>(host_.engine());
    auto* wp = waiter.get();
    waiting_[req_id] = std::move(waiter);  // fresh one-shot event per attempt
    co_await conn_->send(net::Buffer(msg), trace_op);
    const SimTime wait0 = host_.engine().now();
    if (wait_forever) {
      out = co_await wp->done.wait();
      break;
    }
    auto got = co_await wp->done.wait_for(timeout);
    if (got) {
      out = std::move(*got);
      break;
    }
    ++timeouts_;
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::rpc_timeout, req_id, 0, attempt);
    // Same contract as rpc.cc: the timed-out wait is retransmit/backoff
    // dead air; the tail explainer charges it to `rpc_retransmit` (lowest
    // priority above `other`, so live work inside the window keeps its
    // real cause).
    obs::span(trk_rpc_, trace_op, "io/rpc_retransmit", wait0,
              host_.engine().now());
    if (attempt >= cfg_.retry.max_attempts) {  // out = timed_out
      host_.flight().record(host_.engine().now().ns,
                            obs::flight::Ev::rpc_giveup, req_id, 0, attempt);
      break;
    }
    ++retransmits_;
    obs::note_op_retry(trace_op);
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::rpc_retransmit, req_id, 0,
                          attempt + 1);
    timeout = Duration{std::min<std::int64_t>(
        static_cast<std::int64_t>(static_cast<double>(timeout.ns) *
                                  cfg_.retry.backoff),
        cfg_.retry.max_timeout.ns)};
  }
  waiting_.erase(req_id);
  co_return out;
}

void DafsClient::decode_refs(rpc::XdrDecoder& dec, std::uint32_t count,
                             DafsReadResult& out) {
  // The high bit of the count marks the wider per-record layout with a
  // trailing commit version (coherence servers only), so plain replies
  // keep their exact wire size.
  const bool versioned = (count & kVersionedRefsBit) != 0;
  count &= ~kVersionedRefsBit;
  out.refs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t fbn = dec.u64();
    out.refs.emplace_back(fbn, decode_ref(dec));
    if (versioned) out.ref_versions.push_back(dec.u64());
  }
}

// ---------------------------------------------------------------------------
// Protocol operations
// ---------------------------------------------------------------------------

sim::Task<Result<OpenInfo>> DafsClient::dafs_open(const std::string& path,
                                                  obs::OpId trace_op) {
  rpc::XdrEncoder args;
  args.str(path);
  auto reply = co_await call(kOpen, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  OpenInfo info;
  info.fh = dec.u64();
  info.size = dec.u64();
  info.delegation = dec.u32() != 0;
  info.server_block = dec.u32();
  server_block_size_ = info.server_block;
  if (dec.u32() != 0) {
    cache::RemoteRef ref;
    ref.va = dec.u64();
    ref.cap = decode_cap(dec);
    ref.len = fs::ServerFs::kAttrRecordSize;
    ref.seg_id = ref.cap.segment_id;
    info.attr_ref = ref;
  }
  last_open_ = info;
  co_return info;
}

sim::Task<Status> DafsClient::dafs_close(std::uint64_t fh,
                                         obs::OpId trace_op) {
  rpc::XdrEncoder args;
  args.u64(fh);
  auto reply = co_await call(kClose, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  co_return Status(static_cast<Errc>(dec.u32()));
}

sim::Task<Result<DafsReadResult>> DafsClient::read_inline(std::uint64_t fh,
                                                          Bytes off,
                                                          Bytes len,
                                                          obs::OpId trace_op) {
  rpc::XdrEncoder args;
  args.u64(fh);
  args.u64(off);
  args.u32(static_cast<std::uint32_t>(len));
  auto reply = co_await call(kReadInline, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;

  DafsReadResult out;
  out.n = dec.u32();
  out.data_cksum = dec.u32();
  const std::uint32_t ref_count = dec.u32();
  decode_refs(dec, ref_count, out);
  const auto data = dec.rest();
  if (!dec.ok() || data.size() < out.n) co_return Errc::io_error;
  out.inline_data = net::Buffer::copy_of(data.subspan(0, out.n));
  co_return out;
}

sim::Task<Result<DafsReadResult>> DafsClient::read_direct(
    std::uint64_t fh, Bytes off, Bytes len, mem::Vaddr nic_va,
    const crypto::Capability& cap, obs::OpId trace_op) {
  rpc::XdrEncoder args;
  args.u64(fh);
  args.u64(off);
  args.u32(static_cast<std::uint32_t>(len));
  args.u64(nic_va);
  encode_cap(args, cap);
  auto reply = co_await call(kReadDirect, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;

  DafsReadResult out;
  out.n = dec.u32();
  out.data_cksum = dec.u32();
  const std::uint32_t ref_count = dec.u32();
  decode_refs(dec, ref_count, out);
  if (!dec.ok()) co_return Errc::io_error;
  co_return out;
}

sim::Task<Result<Bytes>> DafsClient::write_inline(
    std::uint64_t fh, Bytes off, std::span<const std::byte> data,
    obs::OpId trace_op) {
  // Inline write data is copied into the message (user → comm buffer).
  co_await host_.copy(data.size(), trace_op);
  rpc::XdrEncoder args;
  args.u64(fh);
  args.u64(off);
  args.opaque(data);
  auto reply = co_await call(kWriteInline, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  co_return Bytes{dec.u32()};
}

sim::Task<Result<Bytes>> DafsClient::write_direct(
    std::uint64_t fh, Bytes off, Bytes len, mem::Vaddr nic_va,
    const crypto::Capability& cap, obs::OpId trace_op) {
  rpc::XdrEncoder args;
  args.u64(fh);
  args.u64(off);
  args.u32(static_cast<std::uint32_t>(len));
  args.u64(nic_va);
  encode_cap(args, cap);
  auto reply = co_await call(kWriteDirect, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  co_return Bytes{dec.u32()};
}

sim::Task<Result<DafsClient::PutCommitResult>> DafsClient::put_commit(
    std::uint64_t fh, std::uint64_t fbn, Bytes off, Bytes len,
    std::uint32_t cksum, std::uint32_t flags, obs::OpId trace_op) {
  rpc::XdrEncoder args;
  encode_put_commit(args, PutCommitArgs{fh, fbn,
                                        static_cast<std::uint32_t>(off),
                                        static_cast<std::uint32_t>(len),
                                        cksum, flags});
  auto reply = co_await call(kPutCommit, std::move(args), trace_op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  PutCommitResult out;
  out.n = dec.u32();
  out.version = dec.u64();
  if (!dec.ok()) co_return Errc::io_error;
  co_return out;
}

sim::Task<Result<std::vector<Bytes>>> DafsClient::read_batch(
    const std::vector<BatchEntry>& entries) {
  rpc::XdrEncoder args;
  args.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    args.u64(e.fh);
    args.u64(e.off);
    args.u32(static_cast<std::uint32_t>(e.len));
    args.u64(e.nic_va);
    encode_cap(args, e.cap);
  }
  auto reply = co_await call(kReadBatch, std::move(args));
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  std::vector<Bytes> ns;
  ns.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) ns.push_back(dec.u32());
  co_return ns;
}

sim::Task<Result<DafsClient::Registered*>> DafsClient::ensure_registered(
    mem::Vaddr va, Bytes len, obs::OpId trace_op) {
  auto lookup = [&]() -> Registered* {
    for (auto& r : regs_) {
      if (va >= r.host_base && va + len <= r.host_base + r.len) return &r;
    }
    return nullptr;
  };
  if (auto* r = lookup()) co_return r;
  const mem::Vaddr base = va & ~(mem::kPageSize - 1);
  const Bytes aligned_len =
      ((va + len + mem::kPageSize - 1) & ~(mem::kPageSize - 1)) - base;
  co_await host_.cpu_consume(host_.costs().memory_register, trace_op,
                             "io/register");
  // Re-check after the await: a concurrent caller may have registered the
  // range while this one waited for the CPU (single-flight; duplicate
  // exports would flood the NIC TLB with redundant pinned entries).
  if (auto* r = lookup()) co_return r;
  auto cap = host_.nic().export_segment(host_.user_as(), base, aligned_len,
                                        crypto::SegPerm::read_write,
                                        /*pin_now=*/true);
  if (!cap.ok()) co_return cap.status();
  regs_.push_back(Registered{base, aligned_len, cap.value()});
  co_return &regs_.back();
}

// ---------------------------------------------------------------------------
// FileClient interface
// ---------------------------------------------------------------------------

sim::Task<Result<core::OpenResult>> DafsClient::open(
    const std::string& path) {
  // Delegated opens are satisfied locally (§5.2).
  if (auto it = delegated_opens_.find(path); it != delegated_opens_.end()) {
    co_await host_.cpu_consume(host_.costs().cpu_syscall);
    co_return core::OpenResult{it->second.fh, it->second.size};
  }
  auto info = co_await dafs_open(path);
  if (!info.ok()) co_return info.status();
  if (info.value().delegation) {
    delegations_.grant(info.value().fh);
    delegated_opens_[path] = info.value();
  }
  co_return core::OpenResult{info.value().fh, info.value().size};
}

sim::Task<Status> DafsClient::close(std::uint64_t fh) {
  if (delegations_.has(fh)) {
    co_await host_.cpu_consume(host_.costs().cpu_syscall);
    co_return Status::Ok();  // delegation keeps the server-side open alive
  }
  co_return co_await dafs_close(fh);
}

sim::Task<Result<Bytes>> DafsClient::pread(std::uint64_t fh, Bytes off,
                                           mem::Vaddr user_va, Bytes len) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await pread_op(fh, off, user_va, len, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/pread", b, e);
  record_op(op, e - b, r.ok());
  update_op_signals(len, static_cast<double>(e.ns) / 1000.0);
  co_return r;
}

namespace {
// Failures worth a whole-operation re-issue (new req_id): a request that
// gave up on retransmits, a transfer refused by a (spuriously) revoked
// capability, or a transient media error.
bool retryable(Errc e) {
  return e == Errc::timed_out || e == Errc::revoked || e == Errc::io_error;
}
}  // namespace

sim::Task<Result<Bytes>> DafsClient::pread_op(std::uint64_t fh, Bytes off,
                                              mem::Vaddr user_va, Bytes len,
                                              obs::OpId op) {
  if (!cfg_.direct_reads) {
    Status last = Status(Errc::io_error);
    for (unsigned attempt = 1; attempt <= cfg_.max_io_attempts; ++attempt) {
      auto res = co_await read_inline(fh, off, len, op);
      if (!res.ok()) {
        last = res.status();
        if (retryable(last.code())) {
          note_retry();
          obs::note_op_retry(op);
          continue;
        }
        co_return last;
      }
      // Copy from the communication buffer into the user buffer.
      co_await host_.copy(res.value().n, op);
      if (res.value().n > 0 &&
          !host_.user_as()
               .write(user_va, res.value().inline_data.view().subspan(
                                   0, res.value().n))
               .ok()) {
        co_return Errc::access_fault;
      }
      co_return res.value().n;
    }
    co_return last;
  }
  auto reg = co_await ensure_registered(user_va, len, op);
  if (!reg.ok()) co_return reg.status();
  // Direct reads: the server's RDMA write is unacked, so a lost or corrupt
  // data frame is invisible at the transport level. Verify the landed bytes
  // against the reply's checksum and re-issue the read (bounded) on
  // mismatch; exhausted retries give up with io_error.
  Status last = Status(Errc::io_error);
  for (unsigned attempt = 1; attempt <= cfg_.max_io_attempts; ++attempt) {
    auto res = co_await read_direct(fh, off, len,
                                    reg.value()->nic_va(user_va),
                                    reg.value()->cap, op);
    if (!res.ok()) {
      last = res.status();
      if (retryable(last.code())) {
        note_retry();
        obs::note_op_retry(op);
        continue;
      }
      co_return last;
    }
    const Bytes n = res.value().n;
    std::vector<std::byte> landed(n);
    if (n > 0 && !host_.user_as().read(user_va, landed).ok()) {
      co_return Errc::access_fault;
    }
    if (data_checksum(landed) == res.value().data_cksum) co_return n;
    ++integrity_retries_;
    note_retry();
    obs::note_op_retry(op);
    last = Status(Errc::io_error);
  }
  co_return last;
}

sim::Task<Result<Bytes>> DafsClient::pwrite(std::uint64_t fh, Bytes off,
                                            mem::Vaddr user_va, Bytes len) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await pwrite_op(fh, off, user_va, len, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/pwrite", b, e);
  record_op(op, e - b, r.ok());
  update_op_signals(len, static_cast<double>(e.ns) / 1000.0);
  co_return r;
}

sim::Task<Result<Bytes>> DafsClient::pwrite_op(std::uint64_t fh, Bytes off,
                                               mem::Vaddr user_va, Bytes len,
                                               obs::OpId op) {
  // Writes are idempotent (same data, same offset), so a whole-operation
  // re-issue after a timeout/revocation/transient error is safe.
  Result<Bytes> last = Errc::io_error;
  for (unsigned attempt = 1; attempt <= cfg_.max_io_attempts; ++attempt) {
    if (!cfg_.direct_reads) {
      std::vector<std::byte> data(len);
      if (!host_.user_as().read(user_va, data).ok()) {
        co_return Errc::access_fault;
      }
      last = co_await write_inline(fh, off, data, op);
    } else {
      auto reg = co_await ensure_registered(user_va, len, op);
      if (!reg.ok()) co_return reg.status();
      last = co_await write_direct(fh, off, len,
                                   reg.value()->nic_va(user_va),
                                   reg.value()->cap, op);
    }
    if (last.ok() || !retryable(last.code())) co_return last;
    if (attempt < cfg_.max_io_attempts) {
      note_retry();
      obs::note_op_retry(op);
    }
  }
  co_return last;
}

sim::Task<Result<fs::Attr>> DafsClient::getattr(std::uint64_t fh) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await getattr_op(fh, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/getattr", b, e);
  record_op(op, e - b, r.ok());
  sample_server_cpu(static_cast<double>(e.ns) / 1000.0);
  co_return r;
}

sim::Task<Result<fs::Attr>> DafsClient::getattr_op(std::uint64_t fh,
                                                   obs::OpId op) {
  rpc::XdrEncoder args;
  args.u64(fh);
  auto reply = co_await call(kGetattr, std::move(args), op);
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  co_return decode_attr(dec);
}

sim::Task<Result<core::OpenResult>> DafsClient::create(
    const std::string& path) {
  rpc::XdrEncoder args;
  args.str(path);
  auto reply = co_await call(kCreate, std::move(args));
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  const auto status = static_cast<Errc>(dec.u32());
  if (status != Errc::ok) co_return status;
  const std::uint64_t fh = dec.u64();
  const Bytes size = dec.u64();
  server_block_size_ = dec.u32();
  co_return core::OpenResult{fh, size};
}

sim::Task<Status> DafsClient::unlink(const std::string& path) {
  delegated_opens_.erase(path);
  rpc::XdrEncoder args;
  args.str(path);
  auto reply = co_await call(kRemove, std::move(args));
  if (!reply.ok()) co_return reply.status();
  rpc::XdrDecoder dec(reply.value());
  co_return Status(static_cast<Errc>(dec.u32()));
}

}  // namespace ordma::nas::dafs
