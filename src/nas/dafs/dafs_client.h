// The user-level DAFS client [20]: a VI connection to the server, an event
// loop matching replies to outstanding requests, in-line and direct
// (server-initiated RDMA) read paths, registration caching for user
// buffers, batch I/O, and open delegations.
//
// Read replies surface any piggybacked server-memory references so the
// caching/ODAFS layer above can populate its ORDMA directory.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/client_cache.h"
#include "core/file_client.h"
#include "host/host.h"
#include "msg/vi.h"
#include "nas/dafs/dafs_proto.h"
#include "rpc/rpc.h"
#include "rpc/xdr.h"
#include "sim/event.h"

namespace ordma::nas::dafs {

struct DafsClientConfig {
  std::uint32_t listen_port = kDafsListenPort;
  msg::Completion completion = msg::Completion::poll;
  // Default transport for FileClient::pread: direct (RDMA) or in-line.
  bool direct_reads = true;
  // Request timeout/retransmit policy (timeout 0 = wait forever, the
  // classic lossless-fabric behavior). Retransmits reuse the req_id so the
  // server's duplicate cache can suppress re-execution.
  rpc::RpcRetryPolicy retry{};
  // Upper bound on whole-operation re-issues (new req_id) when a direct
  // read lands bytes failing checksum verification or a request gives up
  // on timeout; exhausting it surfaces Errc::io_error / the last error.
  unsigned max_io_attempts = 4;
};

struct OpenInfo {
  std::uint64_t fh = 0;
  Bytes size = 0;
  bool delegation = false;
  Bytes server_block = 0;
  // Remote reference to the file's attribute record in server memory
  // (ODAFS attribute extension; absent when the server is plain DAFS).
  std::optional<cache::RemoteRef> attr_ref;
};

struct DafsReadResult {
  Bytes n = 0;
  // Checksum of the returned data (nas::data_checksum). For direct reads
  // the RDMA write is unacked, so this is the only way the client can tell
  // that the payload actually landed intact.
  std::uint32_t data_cksum = 0;
  net::Buffer inline_data;  // in-line reads only
  // Piggybacked references: (server file block number, reference).
  std::vector<std::pair<std::uint64_t, cache::RemoteRef>> refs;
  // Per-ref commit versions (coherence mode only; parallel to `refs`,
  // empty when the server sent unversioned records).
  std::vector<std::uint64_t> ref_versions;
};

class DafsClient : public core::FileClient {
 public:
  DafsClient(host::Host& host, net::NodeId server, DafsClientConfig cfg = {});

  // --- protocol-level operations (used by OdafsClient and benches) ---------
  // Every operation takes an optional trace-context op id (obs/trace.h)
  // that rides through the VI/GM transport into server-side work.
  sim::Task<Result<OpenInfo>> dafs_open(const std::string& path,
                                        obs::OpId trace_op = 0);
  sim::Task<Status> dafs_close(std::uint64_t fh, obs::OpId trace_op = 0);
  sim::Task<Result<DafsReadResult>> read_inline(std::uint64_t fh, Bytes off,
                                                Bytes len,
                                                obs::OpId trace_op = 0);
  // Data lands at `nic_va` (a registered client buffer) via RDMA write.
  sim::Task<Result<DafsReadResult>> read_direct(std::uint64_t fh, Bytes off,
                                                Bytes len, mem::Vaddr nic_va,
                                                const crypto::Capability& cap,
                                                obs::OpId trace_op = 0);
  sim::Task<Result<Bytes>> write_inline(std::uint64_t fh, Bytes off,
                                        std::span<const std::byte> data,
                                        obs::OpId trace_op = 0);
  sim::Task<Result<Bytes>> write_direct(std::uint64_t fh, Bytes off,
                                        Bytes len, mem::Vaddr nic_va,
                                        const crypto::Capability& cap,
                                        obs::OpId trace_op = 0);

  // Commit an optimistic ORDMA put (kPutCommit): the client has already
  // RDMA-written `len` bytes at offset `off` into server block (fh, fbn)
  // through a piggybacked write reference; this one round trip asks the
  // server to verify the NIC's placement record against `cksum` and make
  // the bytes durable-visible. Returns the block's new commit version
  // (0 when the server runs without coherence).
  struct PutCommitResult {
    Bytes n = 0;
    std::uint64_t version = 0;
  };
  sim::Task<Result<PutCommitResult>> put_commit(std::uint64_t fh,
                                                std::uint64_t fbn, Bytes off,
                                                Bytes len, std::uint32_t cksum,
                                                std::uint32_t flags,
                                                obs::OpId trace_op = 0);

  // Server-initiated invalidation callback (coherence): called from the
  // receive loop — synchronously, before the ack goes back — with the
  // server block's (ino, fbn, new version). Must not await.
  using InvalidateHandler =
      std::function<void(std::uint64_t ino, std::uint64_t fbn,
                         std::uint64_t version)>;
  void set_invalidate_handler(InvalidateHandler h) {
    on_invalidate_ = std::move(h);
  }
  std::uint64_t invalidates_rx() const { return invalidates_rx_; }

  struct BatchEntry {
    std::uint64_t fh = 0;
    Bytes off = 0;
    Bytes len = 0;
    mem::Vaddr nic_va = 0;
    crypto::Capability cap;
  };
  // Batch I/O (§2.2): one RPC, many server-issued RDMA writes.
  sim::Task<Result<std::vector<Bytes>>> read_batch(
      const std::vector<BatchEntry>& entries);

  // Register a user buffer with the NIC (registration-cached). Returns the
  // entry mapping host addresses to NIC addresses.
  struct Registered {
    mem::Vaddr host_base = 0;
    Bytes len = 0;
    crypto::Capability cap;
    mem::Vaddr nic_va(mem::Vaddr host_va) const {
      return cap.base + (host_va - host_base);
    }
  };
  sim::Task<Result<Registered*>> ensure_registered(mem::Vaddr va, Bytes len,
                                                   obs::OpId trace_op = 0);

  // getattr body with explicit trace context (no root span of its own);
  // exposed so OdafsClient's RPC fallback stays inside the caller's op.
  sim::Task<Result<fs::Attr>> getattr_op(std::uint64_t fh, obs::OpId op);

  // --- FileClient --------------------------------------------------------
  sim::Task<Result<core::OpenResult>> open(const std::string& path) override;
  sim::Task<Status> close(std::uint64_t fh) override;
  sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                 mem::Vaddr user_va, Bytes len) override;
  sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                  mem::Vaddr user_va, Bytes len) override;
  sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) override;
  sim::Task<Result<core::OpenResult>> create(const std::string& path) override;
  sim::Task<Status> unlink(const std::string& path) override;
  const char* protocol_name() const override { return "DAFS"; }

  net::NodeId server_node() const { return server_; }
  host::Host& host() { return host_; }
  std::uint64_t rpcs_issued() const { return next_req_id_ - 1; }
  // --- reliability counters ------------------------------------------------
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  // Direct reads re-issued because the landed bytes failed verification.
  std::uint64_t integrity_retries() const { return integrity_retries_; }
  // Server cache block size, learned from the first open reply (0 before).
  Bytes server_block_size() const { return server_block_size_; }
  // Details of the most recent dafs_open reply (attribute reference etc.).
  const OpenInfo* last_open_info() const {
    return last_open_ ? &*last_open_ : nullptr;
  }

 private:
  // Send `args` as proc `proc` and await the matched reply body (after
  // req_id; status is the first u32 of the returned buffer).
  sim::Task<Result<net::Buffer>> call(std::uint32_t proc,
                                      rpc::XdrEncoder args,
                                      obs::OpId trace_op = 0);
  sim::Task<Status> ensure_connected();
  sim::Task<void> rx_loop();

  // FileClient bodies with explicit trace context; the public overrides
  // wrap them in a fresh op id and its root ("op/...") span.
  sim::Task<Result<Bytes>> pread_op(std::uint64_t fh, Bytes off,
                                    mem::Vaddr user_va, Bytes len,
                                    obs::OpId op);
  sim::Task<Result<Bytes>> pwrite_op(std::uint64_t fh, Bytes off,
                                     mem::Vaddr user_va, Bytes len,
                                     obs::OpId op);

  static void decode_refs(rpc::XdrDecoder& dec, std::uint32_t count,
                          DafsReadResult& out);

  host::Host& host_;
  net::NodeId server_;
  DafsClientConfig cfg_;
  obs::Track trk_app_;  // root spans for this client's file ops
  obs::Track trk_rpc_;  // retransmit/backoff dead-air spans (explainer)
  std::unique_ptr<msg::ViConnection> conn_;
  std::uint32_t next_req_id_ = 1;

  struct Waiter {
    explicit Waiter(sim::Engine& eng) : done(eng) {}
    sim::Event<net::Buffer> done;
  };
  std::unordered_map<std::uint32_t, std::unique_ptr<Waiter>> waiting_;

  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t integrity_retries_ = 0;
  std::uint64_t invalidates_rx_ = 0;
  InvalidateHandler on_invalidate_;

  std::deque<Registered> regs_;
  cache::DelegationTable delegations_;
  std::unordered_map<std::string, OpenInfo> delegated_opens_;
  std::optional<OpenInfo> last_open_;
  Bytes server_block_size_ = 0;
};

}  // namespace ordma::nas::dafs
