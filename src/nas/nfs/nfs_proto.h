// NFS-derivative wire protocol shared by the server and the three client
// variants of §3/§5.1. Standard ONC-RPC-over-UDP framing; READ replies
// carry bulk data that RDDP-capable NICs may place directly (NFS
// pre-posting), and READ_HYBRID replaces the bulk reply with a
// server-initiated RDMA write into an advertised client buffer (NFS hybrid,
// the paper's modified wire protocol with "remote memory pointer exchange").
#pragma once

#include <cstdint>

namespace ordma::nas::nfs {

inline constexpr std::uint16_t kNfsPort = 2049;

enum Proc : std::uint32_t {
  kLookup = 1,   // (dir ino, name) → (attr)
  kGetattr = 2,  // (ino) → (attr)
  kRead = 3,     // (ino, off u64, len u32) → (n u32 | bulk n bytes)
  kWrite = 4,    // (ino, off u64, data opaque) → (n u32, attr)
  kCreate = 5,   // (dir ino, name, type u32) → (attr)
  kRemove = 6,   // (dir ino, name) → ()
  kReaddir = 7,  // (dir ino) → (count u32, names...)
  kReadHybrid = 8,  // (ino, off u64, len u32, client nic-va u64, cap) → (n)
};

}  // namespace ordma::nas::nfs
