#include "nas/nfs/nfs_client.h"

#include <algorithm>

#include "nas/wire_util.h"
#include "obs/sampler.h"

namespace ordma::nas::nfs {

namespace {
// Split "a/b/c" into components.
std::vector<std::string> components(const std::string& path) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < path.size()) {
    const auto slash = path.find('/', start);
    const auto end = slash == std::string::npos ? path.size() : slash;
    if (end > start) out.push_back(path.substr(start, end - start));
    start = end + 1;
  }
  return out;
}
}  // namespace

NfsClientBase::NfsClientBase(host::Host& host, msg::UdpStack& stack,
                             net::NodeId server, std::uint16_t local_port,
                             Bytes transfer_size, rpc::RpcRetryPolicy retry)
    : host_(host),
      rpc_(host, stack, local_port, retry),
      server_(server),
      transfer_size_(transfer_size),
      trk_app_(host.name(), "app") {}

sim::Task<Result<fs::Attr>> NfsClientBase::resolve(const std::string& path) {
  fs::Attr cur;
  cur.ino = fs::ServerFs::kRootIno;
  cur.type = fs::FileType::directory;
  for (const auto& name : components(path)) {
    rpc::XdrEncoder args;
    args.u64(cur.ino);
    args.str(name);
    auto res = co_await rpc_.call(server_, kNfsPort, kLookup, args.finish());
    if (!res.ok()) co_return res.status();
    if (res.value().status != 0) {
      co_return static_cast<Errc>(res.value().status);
    }
    rpc::XdrDecoder dec(res.value().results);
    cur = decode_attr(dec);
  }
  co_return cur;
}

sim::Task<Result<std::pair<fs::Ino, std::string>>>
NfsClientBase::resolve_parent(const std::string& path) {
  auto parts = components(path);
  if (parts.empty()) co_return Errc::invalid_argument;
  const std::string leaf = parts.back();
  parts.pop_back();
  fs::Ino dir = fs::ServerFs::kRootIno;
  for (const auto& name : parts) {
    rpc::XdrEncoder args;
    args.u64(dir);
    args.str(name);
    auto res = co_await rpc_.call(server_, kNfsPort, kLookup, args.finish());
    if (!res.ok()) co_return res.status();
    if (res.value().status != 0) {
      co_return static_cast<Errc>(res.value().status);
    }
    rpc::XdrDecoder dec(res.value().results);
    dir = decode_attr(dec).ino;
  }
  co_return std::make_pair(dir, leaf);
}

sim::Task<Result<core::OpenResult>> NfsClientBase::open(
    const std::string& path) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall);
  auto attr = co_await resolve(path);
  if (!attr.ok()) co_return attr.status();
  co_return core::OpenResult{attr.value().ino, attr.value().size};
}

sim::Task<Status> NfsClientBase::close(std::uint64_t) {
  // NFS is stateless: close is purely local.
  co_await host_.cpu_consume(host_.costs().cpu_syscall);
  co_return Status::Ok();
}

sim::Task<Result<Bytes>> NfsClientBase::pread(std::uint64_t fh, Bytes off,
                                              mem::Vaddr user_va,
                                              Bytes len) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await pread_op(fh, off, user_va, len, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/pread", b, e);
  record_op(op, e - b, r.ok());
  update_op_signals(len, static_cast<double>(e.ns) / 1000.0);
  co_return r;
}

sim::Task<Result<Bytes>> NfsClientBase::pread_op(std::uint64_t fh, Bytes off,
                                                 mem::Vaddr user_va,
                                                 Bytes len, obs::OpId op) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall, op, "io/syscall");
  Bytes done = 0;
  while (done < len) {
    const Bytes chunk = std::min<Bytes>(len - done, transfer_size_);
    auto n = co_await read_chunk(fh, off + done, user_va + done, chunk, op);
    if (!n.ok()) co_return n.status();
    done += n.value();
    if (n.value() < chunk) break;  // EOF
  }
  co_return done;
}

sim::Task<Result<Bytes>> NfsClientBase::pwrite(std::uint64_t fh, Bytes off,
                                               mem::Vaddr user_va,
                                               Bytes len) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await pwrite_op(fh, off, user_va, len, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/pwrite", b, e);
  record_op(op, e - b, r.ok());
  update_op_signals(len, static_cast<double>(e.ns) / 1000.0);
  co_return r;
}

sim::Task<Result<Bytes>> NfsClientBase::pwrite_op(std::uint64_t fh,
                                                  Bytes off,
                                                  mem::Vaddr user_va,
                                                  Bytes len, obs::OpId op) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall, op, "io/syscall");
  Bytes done = 0;
  while (done < len) {
    const Bytes chunk = std::min<Bytes>(len - done, transfer_size_);
    std::vector<std::byte> data(chunk);
    if (!host_.user_as().read(user_va + done, data).ok()) {
      co_return Errc::access_fault;
    }
    co_await host_.cpu_consume(host_.costs().nfs_client_proc, op,
                               "io/nfs_client_proc");
    rpc::XdrEncoder args;
    args.u64(fh);
    args.u64(off + done);
    args.opaque(data);
    auto res = co_await rpc_.call(server_, kNfsPort, kWrite, args.finish(),
                                  nullptr, op);
    if (!res.ok()) co_return res.status();
    if (res.value().status != 0) {
      co_return static_cast<Errc>(res.value().status);
    }
    rpc::XdrDecoder dec(res.value().results);
    done += dec.u32();
  }
  co_return done;
}

sim::Task<Result<fs::Attr>> NfsClientBase::getattr(std::uint64_t fh) {
  const obs::OpId op = obs::new_op();
  const SimTime b = host_.engine().now();
  auto r = co_await getattr_op(fh, op);
  if (!r.ok()) obs::note_op_error(op);
  const SimTime e = host_.engine().now();
  obs::root(trk_app_, op, "op/getattr", b, e);
  record_op(op, e - b, r.ok());
  sample_server_cpu(static_cast<double>(e.ns) / 1000.0);
  co_return r;
}

sim::Task<Result<fs::Attr>> NfsClientBase::getattr_op(std::uint64_t fh,
                                                      obs::OpId op) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall, op, "io/syscall");
  rpc::XdrEncoder args;
  args.u64(fh);
  auto res = co_await rpc_.call(server_, kNfsPort, kGetattr, args.finish(),
                                nullptr, op);
  if (!res.ok()) co_return res.status();
  if (res.value().status != 0) co_return static_cast<Errc>(res.value().status);
  rpc::XdrDecoder dec(res.value().results);
  co_return decode_attr(dec);
}

sim::Task<Result<core::OpenResult>> NfsClientBase::create(
    const std::string& path) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall);
  auto parent = co_await resolve_parent(path);
  if (!parent.ok()) co_return parent.status();
  rpc::XdrEncoder args;
  args.u64(parent.value().first);
  args.str(parent.value().second);
  args.u32(static_cast<std::uint32_t>(fs::FileType::regular));
  auto res = co_await rpc_.call(server_, kNfsPort, kCreate, args.finish());
  if (!res.ok()) co_return res.status();
  if (res.value().status != 0) co_return static_cast<Errc>(res.value().status);
  rpc::XdrDecoder dec(res.value().results);
  const auto attr = decode_attr(dec);
  co_return core::OpenResult{attr.ino, attr.size};
}

sim::Task<Status> NfsClientBase::unlink(const std::string& path) {
  co_await host_.cpu_consume(host_.costs().cpu_syscall);
  auto parent = co_await resolve_parent(path);
  if (!parent.ok()) co_return parent.status();
  rpc::XdrEncoder args;
  args.u64(parent.value().first);
  args.str(parent.value().second);
  auto res = co_await rpc_.call(server_, kNfsPort, kRemove, args.finish());
  if (!res.ok()) co_return res.status();
  co_return Status(static_cast<Errc>(res.value().status));
}

// ---------------------------------------------------------------------------
// Standard NFS: in-line data, two staging copies on the client.
// ---------------------------------------------------------------------------

sim::Task<Result<Bytes>> NfsClient::read_chunk(std::uint64_t ino, Bytes off,
                                               mem::Vaddr user_va, Bytes len,
                                               obs::OpId op) {
  const auto& cm = host_.costs();
  rpc::XdrEncoder args;
  args.u64(ino);
  args.u64(off);
  args.u32(static_cast<std::uint32_t>(len));
  auto res = co_await rpc_.call(server_, kNfsPort, kRead, args.finish(),
                                nullptr, op);
  if (!res.ok()) co_return res.status();
  if (res.value().status != 0) co_return static_cast<Errc>(res.value().status);

  rpc::XdrDecoder dec(res.value().results);
  const Bytes n = dec.u32();
  const auto data = dec.rest();
  if (data.size() < n) co_return Errc::io_error;

  // Stage 1: socket buffers (mbuf chain) → client buffer cache.
  co_await host_.cpu_consume(cm.nfs_stage_bw.time_for(n) + cm.copy_fixed, op,
                             "byte/nfs_stage");
  co_await host_.cpu_consume(cm.nfs_client_proc, op, "io/nfs_client_proc");
  // Stage 2: buffer cache → user buffer.
  co_await host_.copy(n, op);
  if (!host_.user_as().write(user_va, data.subspan(0, n)).ok()) {
    co_return Errc::access_fault;
  }
  co_return n;
}

// ---------------------------------------------------------------------------
// NFS pre-posting: per-I/O pin + pre-post; NIC places payload directly.
// ---------------------------------------------------------------------------

sim::Task<Result<Bytes>> NfsPrepostClient::read_chunk(std::uint64_t ino,
                                                      Bytes off,
                                                      mem::Vaddr user_va,
                                                      Bytes len,
                                                      obs::OpId op) {
  const auto& cm = host_.costs();
  // On-the-fly registration: pin the user buffer for the DMA (§3).
  co_await host_.cpu_consume(cm.memory_register, op, "io/register");

  rpc::XdrEncoder args;
  args.u64(ino);
  args.u64(off);
  args.u32(static_cast<std::uint32_t>(len));
  rpc::Prepost pp{&host_.user_as(), user_va, len};
  auto res =
      co_await rpc_.call(server_, kNfsPort, kRead, args.finish(), &pp, op);
  co_await host_.cpu_consume(cm.memory_deregister, op, "io/register");
  if (!res.ok()) co_return res.status();
  if (res.value().status != 0) co_return static_cast<Errc>(res.value().status);

  rpc::XdrDecoder dec(res.value().results);
  const Bytes n = dec.u32();
  co_await host_.cpu_consume(cm.nfs_client_proc, op, "io/nfs_client_proc");
  if (!res.value().rddp_placed && n > 0) {
    // The NIC did not match the pre-post (e.g. cancelled); fall back to the
    // in-line path so data is never lost.
    const auto data = dec.rest();
    if (data.size() < n) co_return Errc::io_error;
    co_await host_.copy(n, op);
    if (!host_.user_as().write(user_va, data.subspan(0, n)).ok()) {
      co_return Errc::access_fault;
    }
  }
  co_return n;
}

// ---------------------------------------------------------------------------
// NFS hybrid: advertise a registered buffer, server RDMA-writes into it.
// ---------------------------------------------------------------------------

sim::Task<Result<NfsHybridClient::Registered*>>
NfsHybridClient::ensure_registered(mem::Vaddr va, Bytes len, obs::OpId op) {
  for (auto& r : regs_) {
    if (va >= r.host_base && va + len <= r.host_base + r.len) co_return &r;
  }
  // Register the page-aligned range covering [va, va+len).
  const mem::Vaddr base = va & ~(mem::kPageSize - 1);
  const Bytes aligned_len =
      ((va + len + mem::kPageSize - 1) & ~(mem::kPageSize - 1)) - base;
  co_await host_.cpu_consume(host_.costs().memory_register, op,
                             "io/register");
  auto cap = host_.nic().export_segment(host_.user_as(), base, aligned_len,
                                        crypto::SegPerm::read_write,
                                        /*pin_now=*/true);
  if (!cap.ok()) co_return cap.status();
  ++registrations_;
  regs_.push_back(Registered{base, aligned_len, cap.value()});
  co_return &regs_.back();
}

sim::Task<Result<Bytes>> NfsHybridClient::read_chunk(std::uint64_t ino,
                                                     Bytes off,
                                                     mem::Vaddr user_va,
                                                     Bytes len,
                                                     obs::OpId op) {
  const auto& cm = host_.costs();
  auto reg = co_await ensure_registered(user_va, len, op);
  if (!reg.ok()) co_return reg.status();
  const Registered& r = *reg.value();
  const mem::Vaddr nic_va = r.cap.base + (user_va - r.host_base);

  // The server's RDMA write is unacked: a dropped data frame leaves the RPC
  // reply intact but the user buffer stale. Verify the landed bytes against
  // the reply's checksum and re-issue the whole read a bounded number of
  // times before surfacing an I/O error.
  constexpr unsigned kReadAttempts = 4;
  for (unsigned attempt = 1;; ++attempt) {
    rpc::XdrEncoder args;
    args.u64(ino);
    args.u64(off);
    args.u32(static_cast<std::uint32_t>(len));
    args.u64(nic_va);
    encode_cap(args, r.cap);
    auto res = co_await rpc_.call(server_, kNfsPort, kReadHybrid,
                                  args.finish(), nullptr, op);
    if (!res.ok()) co_return res.status();
    if (res.value().status != 0) {
      co_return static_cast<Errc>(res.value().status);
    }

    co_await host_.cpu_consume(cm.nfs_client_proc, op, "io/nfs_client_proc");
    rpc::XdrDecoder dec(res.value().results);
    const Bytes n = dec.u32();
    const std::uint32_t want = dec.u32();
    if (!dec.ok()) co_return Errc::io_error;
    std::vector<std::byte> landed(n);
    if (!host_.user_as().read(user_va, landed).ok()) {
      co_return Errc::access_fault;
    }
    if (data_checksum(landed) == want) co_return n;
    ++integrity_retries_;
    note_retry();
    obs::note_op_retry(op);
    if (attempt >= kReadAttempts) co_return Errc::io_error;
  }
}

}  // namespace ordma::nas::nfs
