#include "nas/nfs/nfs_server.h"

#include <vector>

#include "nas/wire_util.h"

namespace ordma::nas::nfs {

namespace {
std::uint32_t err_u32(Errc e) { return static_cast<std::uint32_t>(e); }
}

NfsServer::NfsServer(host::Host& host, msg::UdpStack& stack,
                     fs::ServerFs& fs, std::uint16_t port)
    : host_(host), fs_(fs), rpc_(host, stack, port) {
  auto bind = [this](std::uint32_t proc,
                     sim::Task<rpc::RpcServerReply> (NfsServer::*fn)(
                         const rpc::RpcCallCtx&)) {
    rpc_.register_handler(proc, [this, fn](const rpc::RpcCallCtx& ctx) {
      return (this->*fn)(ctx);
    });
  };
  bind(kLookup, &NfsServer::do_lookup);
  bind(kGetattr, &NfsServer::do_getattr);
  bind(kRead, &NfsServer::do_read);
  bind(kReadHybrid, &NfsServer::do_read_hybrid);
  bind(kWrite, &NfsServer::do_write);
  bind(kCreate, &NfsServer::do_create);
  bind(kRemove, &NfsServer::do_remove);
  bind(kReaddir, &NfsServer::do_readdir);
}

sim::Task<rpc::RpcServerReply> NfsServer::do_lookup(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino dir = dec.u64();
  const std::string name = dec.str();
  rpc::RpcServerReply r;
  auto ino = fs_.lookup(dir, name);
  if (!ino.ok()) {
    r.status = err_u32(ino.code());
    co_return r;
  }
  encode_attr(r.results, fs_.getattr(ino.value()).value());
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_getattr(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino ino = dec.u64();
  rpc::RpcServerReply r;
  auto attr = fs_.getattr(ino);
  if (!attr.ok()) {
    r.status = err_u32(attr.code());
    co_return r;
  }
  encode_attr(r.results, attr.value());
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_read(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino ino = dec.u64();
  const Bytes off = dec.u64();
  const Bytes len = dec.u32();

  rpc::RpcServerReply r;
  std::vector<std::byte> data(len);
  auto n = co_await fs_.read(ino, off, data, ctx.trace_op);
  if (!n.ok()) {
    r.status = err_u32(n.code());
    co_return r;
  }
  data.resize(n.value());
  r.results.u32(static_cast<std::uint32_t>(n.value()));
  r.bulk = net::Buffer::take(std::move(data));
  r.gather_send = true;  // NIC gathers from cache pages; no host copy
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_read_hybrid(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino ino = dec.u64();
  const Bytes off = dec.u64();
  const Bytes len = dec.u32();
  const mem::Vaddr client_va = dec.u64();
  const crypto::Capability cap = decode_cap(dec);

  rpc::RpcServerReply r;
  std::vector<std::byte> data(len);
  auto n = co_await fs_.read(ino, off, data, ctx.trace_op);
  if (!n.ok()) {
    r.status = err_u32(n.code());
    co_return r;
  }
  data.resize(n.value());
  // The RDMA write is unacked, so its loss is silent at this layer; the
  // client verifies the landed bytes against this checksum and retries.
  const std::uint32_t cksum = data_checksum(data);
  if (n.value() > 0) {
    // In-order reliable delivery: the RPC reply sent after the RDMA write
    // arrives behind the data, so the server does not wait for the ack.
    auto st = co_await host_.nic().gm_put(
        ctx.client, client_va, net::Buffer::take(std::move(data)), cap,
        /*wait_ack=*/false, ctx.trace_op);
    if (!st.ok()) {
      r.status = err_u32(st.code());
      co_return r;
    }
  }
  r.results.u32(static_cast<std::uint32_t>(n.value()));
  r.results.u32(cksum);
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_write(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino ino = dec.u64();
  const Bytes off = dec.u64();
  const auto data = dec.opaque();

  rpc::RpcServerReply r;
  // Incoming write data is staged through kernel buffers (copy).
  co_await host_.copy(data.size(), ctx.trace_op);
  auto n = co_await fs_.write(ino, off, data, ctx.trace_op);
  if (!n.ok()) {
    r.status = err_u32(n.code());
    co_return r;
  }
  r.results.u32(static_cast<std::uint32_t>(n.value()));
  encode_attr(r.results, fs_.getattr(ino).value());
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_create(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino dir = dec.u64();
  const std::string name = dec.str();
  const auto type = static_cast<fs::FileType>(dec.u32());
  rpc::RpcServerReply r;
  auto ino = fs_.create(dir, name, type);
  if (!ino.ok()) {
    r.status = err_u32(ino.code());
    co_return r;
  }
  encode_attr(r.results, fs_.getattr(ino.value()).value());
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_remove(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino dir = dec.u64();
  const std::string name = dec.str();
  rpc::RpcServerReply r;
  r.status = err_u32(fs_.remove(dir, name).code());
  co_return r;
}

sim::Task<rpc::RpcServerReply> NfsServer::do_readdir(
    const rpc::RpcCallCtx& ctx) {
  co_await host_.cpu_consume(host_.costs().nfs_server_proc, ctx.trace_op,
                             "io/nfs_server_proc");
  rpc::XdrDecoder dec(ctx.args);
  const fs::Ino dir = dec.u64();
  rpc::RpcServerReply r;
  auto names = fs_.readdir(dir);
  if (!names.ok()) {
    r.status = err_u32(names.code());
    co_return r;
  }
  r.results.u32(static_cast<std::uint32_t>(names.value().size()));
  for (const auto& n : names.value()) r.results.str(n);
  co_return r;
}

}  // namespace ordma::nas::nfs
