// The NFS-derivative server: ONC-RPC handlers over the server file system.
// One server binary serves all three client variants — standard clients
// ignore the RDDP framing, pre-posting clients let their NIC split it, and
// hybrid clients receive their data via server-initiated RDMA write
// (§3.1: "NFS hybrid ... uses GM put to perform server-initiated RDMA
// writes to client memory buffers").
#pragma once

#include "fs/server_fs.h"
#include "host/host.h"
#include "msg/udp.h"
#include "nas/nfs/nfs_proto.h"
#include "rpc/rpc.h"

namespace ordma::nas::nfs {

class NfsServer {
 public:
  NfsServer(host::Host& host, msg::UdpStack& stack, fs::ServerFs& fs,
            std::uint16_t port = kNfsPort);
  NfsServer(const NfsServer&) = delete;
  NfsServer& operator=(const NfsServer&) = delete;

  std::uint64_t requests_served() const { return rpc_.requests_served(); }
  const rpc::RpcServer& rpc_server() const { return rpc_; }

 private:
  sim::Task<rpc::RpcServerReply> do_lookup(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_getattr(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_read(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_read_hybrid(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_write(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_create(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_remove(const rpc::RpcCallCtx& ctx);
  sim::Task<rpc::RpcServerReply> do_readdir(const rpc::RpcCallCtx& ctx);

  host::Host& host_;
  fs::ServerFs& fs_;
  rpc::RpcServer rpc_;
};

}  // namespace ordma::nas::nfs
