// The three kernel NFS client variants of §3/§5.1, sharing one wire
// protocol and differing only in how READ data reaches the user buffer:
//
//  * NfsClient (standard) — data arrives in-line with the RPC reply and is
//    staged twice: socket buffers → client buffer cache → user buffer.
//  * NfsPrepostClient (RDDP-RPC) — the user buffer is pinned and pre-posted
//    to the NIC per I/O, tagged by the RPC xid; the NIC header-splits the
//    reply and places the payload directly (zero-copy, uncached).
//  * NfsHybridClient (RDDP-RDMA) — the client advertises a registered
//    buffer (registration cached across I/Os) and the server RDMA-writes
//    the data before replying.
//
// All variants resolve paths component-wise with LOOKUP and run over UDP.
#pragma once

#include <string>
#include <deque>
#include <vector>

#include "core/file_client.h"
#include "host/host.h"
#include "msg/udp.h"
#include "nas/nfs/nfs_proto.h"
#include "rpc/rpc.h"

namespace ordma::nas::nfs {

class NfsClientBase : public core::FileClient {
 public:
  NfsClientBase(host::Host& host, msg::UdpStack& stack, net::NodeId server,
                std::uint16_t local_port, Bytes transfer_size = KiB(512),
                rpc::RpcRetryPolicy retry = {});

  sim::Task<Result<core::OpenResult>> open(const std::string& path) override;
  sim::Task<Status> close(std::uint64_t fh) override;
  sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                 mem::Vaddr user_va, Bytes len) override;
  sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                  mem::Vaddr user_va, Bytes len) override;
  sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) override;
  sim::Task<Result<core::OpenResult>> create(const std::string& path) override;
  sim::Task<Status> unlink(const std::string& path) override;

  // NFS transfer size ("UDP/IP is modified so that the NFS transfer size
  // can match the application block size up to 512KB", §5.1).
  Bytes transfer_size() const { return transfer_size_; }

 protected:
  // One wire READ of at most transfer_size bytes; returns bytes read.
  // `op` is the enclosing file operation's trace context (obs/trace.h).
  virtual sim::Task<Result<Bytes>> read_chunk(std::uint64_t ino, Bytes off,
                                              mem::Vaddr user_va, Bytes len,
                                              obs::OpId op) = 0;

  // Resolve a path ("a/b/c", relative to the export root) to (attr).
  sim::Task<Result<fs::Attr>> resolve(const std::string& path);
  // Resolve the directory part and return (dir ino, leaf name).
  sim::Task<Result<std::pair<fs::Ino, std::string>>> resolve_parent(
      const std::string& path);

  host::Host& host_;
  rpc::RpcClient rpc_;
  net::NodeId server_;
  Bytes transfer_size_;

 private:
  // FileClient bodies with explicit trace context; the public overrides
  // wrap them in a fresh op id and its root ("op/...") span.
  sim::Task<Result<Bytes>> pread_op(std::uint64_t fh, Bytes off,
                                    mem::Vaddr user_va, Bytes len,
                                    obs::OpId op);
  sim::Task<Result<Bytes>> pwrite_op(std::uint64_t fh, Bytes off,
                                     mem::Vaddr user_va, Bytes len,
                                     obs::OpId op);
  sim::Task<Result<fs::Attr>> getattr_op(std::uint64_t fh, obs::OpId op);

  obs::Track trk_app_;  // root spans for this client's file ops
};

class NfsClient final : public NfsClientBase {
 public:
  using NfsClientBase::NfsClientBase;
  const char* protocol_name() const override { return "NFS"; }

 protected:
  sim::Task<Result<Bytes>> read_chunk(std::uint64_t ino, Bytes off,
                                      mem::Vaddr user_va, Bytes len,
                                      obs::OpId op) override;
};

class NfsPrepostClient final : public NfsClientBase {
 public:
  using NfsClientBase::NfsClientBase;
  const char* protocol_name() const override { return "NFS pre-posting"; }

 protected:
  sim::Task<Result<Bytes>> read_chunk(std::uint64_t ino, Bytes off,
                                      mem::Vaddr user_va, Bytes len,
                                      obs::OpId op) override;
};

class NfsHybridClient final : public NfsClientBase {
 public:
  using NfsClientBase::NfsClientBase;
  const char* protocol_name() const override { return "NFS hybrid"; }

  std::uint64_t registrations() const { return registrations_; }
  // Reads re-issued because the landed bytes failed checksum verification
  // (the server's unacked RDMA write was lost or corrupted).
  std::uint64_t integrity_retries() const { return integrity_retries_; }

 protected:
  sim::Task<Result<Bytes>> read_chunk(std::uint64_t ino, Bytes off,
                                      mem::Vaddr user_va, Bytes len,
                                      obs::OpId op) override;

 private:
  struct Registered {
    mem::Vaddr host_base = 0;
    Bytes len = 0;
    crypto::Capability cap;
  };
  // Registration cache (§5.1: "avoid registering application buffers with
  // the NIC on each I/O by caching registrations").
  sim::Task<Result<Registered*>> ensure_registered(mem::Vaddr va, Bytes len,
                                                   obs::OpId op);
  std::deque<Registered> regs_;
  std::uint64_t registrations_ = 0;
  std::uint64_t integrity_retries_ = 0;
};

}  // namespace ordma::nas::nfs
