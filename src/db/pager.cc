#include "db/pager.h"

namespace ordma::db {

Pager::Pager(host::Host& host, core::FileClient& file, std::uint64_t fh,
             Bytes file_size, PagerConfig cfg)
    : host_(host),
      file_(file),
      fh_(fh),
      cfg_(cfg),
      num_pages_(static_cast<PageNo>((file_size + cfg.page_size - 1) /
                                     cfg.page_size)) {
  slab_ = host_.map_new(host_.user_as(),
                        cfg_.cache_pages * cfg_.page_size);
  frames_.reserve(cfg_.cache_pages);
  for (std::size_t i = 0; i < cfg_.cache_pages; ++i) {
    auto f = std::make_unique<Frame>();
    f->slot = static_cast<int>(i);
    f->bytes.resize(cfg_.page_size);
    free_.push_back(f.get());
    frames_.push_back(std::move(f));
  }
}

Pager::~Pager() = default;

sim::Task<Result<Pager::Frame*>> Pager::take_frame() {
  if (auto* f = free_.pop_front()) co_return f;
  Frame* victim = nullptr;
  lru_.for_each([&](Frame* cand) {
    if (!victim && cand->pin == 0) victim = cand;
  });
  if (!victim) co_return Errc::no_space;
  if (victim->dirty) {
    auto st = co_await write_back(*victim);
    if (!st.ok()) co_return st;
  }
  map_.erase(victim->page);
  lru_.erase(victim);
  victim->valid = false;
  co_return victim;
}

sim::Task<Status> Pager::write_back(Frame& f) {
  // Mirror → slab → file.
  ORDMA_CHECK(host_.user_as().write(slot_va(f.slot), f.bytes).ok());
  auto n = co_await file_.pwrite(fh_, static_cast<Bytes>(f.page) *
                                          cfg_.page_size,
                                 slot_va(f.slot), cfg_.page_size);
  if (!n.ok()) co_return n.status();
  f.dirty = false;
  co_return Status::Ok();
}

sim::Task<Result<Pager::Frame*>> Pager::load(PageNo p) {
  auto frame = co_await take_frame();
  if (!frame.ok()) co_return frame.status();
  Frame* f = frame.value();
  f->page = p;
  pin(*f);

  auto n = co_await file_.pread(fh_, static_cast<Bytes>(p) * cfg_.page_size,
                                slot_va(f->slot), cfg_.page_size);
  unpin(*f);
  if (!n.ok()) {
    free_.push_back(f);
    co_return n.status();
  }
  // Sync the mirror from the slab (data may have been RDMA-placed).
  ORDMA_CHECK(host_.user_as().read(slot_va(f->slot), f->bytes).ok());
  if (n.value() < cfg_.page_size) {
    std::fill(f->bytes.begin() + n.value(), f->bytes.end(), std::byte{0});
  }
  f->valid = true;
  f->dirty = false;
  map_[p] = f;
  lru_.push_back(f);
  co_return f;
}

sim::Task<Result<Pager::Frame*>> Pager::fetch(PageNo p) {
  if (auto it = map_.find(p); it != map_.end()) {
    ++hits_;
    lru_.touch(it->second);
    co_await host_.cpu_consume(host_.costs().cache_hit_proc);
    co_return it->second;
  }
  if (auto it = inflight_.find(p); it != inflight_.end()) {
    // Join the in-flight prefetch.
    auto shared = it->second;
    co_return co_await shared->done.wait();
  }
  ++misses_;
  co_await host_.cpu_consume(host_.costs().cache_miss_proc);
  co_return co_await load(p);
}

void Pager::prefetch(PageNo p) {
  if (map_.count(p) || inflight_.count(p)) return;
  auto state = std::make_shared<Inflight>(host_.engine());
  inflight_[p] = state;
  host_.engine().spawn([](Pager& pager, PageNo p,
                          std::shared_ptr<Inflight> state)
                           -> sim::Task<void> {
    auto res = co_await pager.load(p);
    pager.inflight_.erase(p);
    state->done.set(res);
  }(*this, p, state));
}

sim::Task<void> Pager::load_run(PageNo first, std::uint32_t count,
                                std::vector<std::shared_ptr<Inflight>>
                                    flights) {
  const Bytes run_len = static_cast<Bytes>(count) * cfg_.page_size;
  // One large read into a staging area from the pool (each in-flight run
  // needs its own); direct-transfer protocols place the whole run with a
  // single request's worth of per-I/O overhead. A real implementation
  // gathers straight into cache pages (readv); the staging redistribution
  // below is bookkeeping only.
  const mem::Vaddr scratch = co_await scratch_pool_->recv();
  auto n = co_await file_.pread(
      fh_, static_cast<Bytes>(first) * cfg_.page_size, scratch, run_len);

  for (std::uint32_t i = 0; i < count; ++i) {
    Result<Frame*> res = Errc::io_error;
    if (n.ok()) {
      auto frame = co_await take_frame();
      if (frame.ok()) {
        Frame* f = frame.value();
        f->page = first + i;
        const Bytes off = static_cast<Bytes>(i) * cfg_.page_size;
        const Bytes have =
            n.value() > off ? std::min<Bytes>(cfg_.page_size,
                                              n.value() - off)
                            : 0;
        ORDMA_CHECK(host_.user_as()
                        .read(scratch + off,
                              std::span<std::byte>(f->bytes.data(), have))
                        .ok());
        if (have < cfg_.page_size) {
          std::fill(f->bytes.begin() + have, f->bytes.end(), std::byte{0});
        }
        // Keep the slab slot coherent with the mirror.
        ORDMA_CHECK(host_.user_as().write(slot_va(f->slot), f->bytes).ok());
        f->valid = true;
        f->dirty = false;
        map_[f->page] = f;
        lru_.push_back(f);
        res = f;
      } else {
        res = frame.status();
      }
    }
    inflight_.erase(first + i);
    flights[i]->done.set(res);
  }
  scratch_pool_->send(scratch);
}

void Pager::prefetch_list(const std::vector<PageNo>& pages) {
  if (!scratch_pool_) {
    scratch_pool_ = std::make_unique<sim::Channel<mem::Vaddr>>(
        host_.engine());
    scratch_run_len_ = 16 * cfg_.page_size;
    for (int i = 0; i < 16; ++i) {
      scratch_pool_->send(host_.map_new(host_.user_as(), scratch_run_len_));
    }
  }
  const auto max_run =
      static_cast<std::uint32_t>(scratch_run_len_ / cfg_.page_size);

  std::size_t i = 0;
  while (i < pages.size()) {
    const PageNo p = pages[i];
    if (map_.count(p) || inflight_.count(p)) {
      ++i;
      continue;
    }
    // Extend a maximal contiguous run of uncached pages.
    std::uint32_t count = 1;
    while (i + count < pages.size() && count < max_run &&
           pages[i + count] == p + count && !map_.count(pages[i + count]) &&
           !inflight_.count(pages[i + count])) {
      ++count;
    }
    std::vector<std::shared_ptr<Inflight>> flights;
    flights.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      auto state = std::make_shared<Inflight>(host_.engine());
      inflight_[p + k] = state;
      flights.push_back(std::move(state));
    }
    host_.engine().spawn(load_run(p, count, std::move(flights)));
    i += count;
  }
}

sim::Task<Result<Pager::Frame*>> Pager::allocate() {
  auto frame = co_await take_frame();
  if (!frame.ok()) co_return frame.status();
  Frame* f = frame.value();
  f->page = num_pages_++;
  std::fill(f->bytes.begin(), f->bytes.end(), std::byte{0});
  f->valid = true;
  f->dirty = true;
  map_[f->page] = f;
  lru_.push_back(f);
  co_return f;
}

sim::Task<Status> Pager::flush() {
  std::vector<Frame*> dirty;
  lru_.for_each([&](Frame* f) {
    if (f->dirty) dirty.push_back(f);
  });
  for (Frame* f : dirty) {
    auto st = co_await write_back(*f);
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

sim::Task<Status> Pager::reset() {
  auto st = co_await flush();
  if (!st.ok()) co_return st;
  std::vector<Frame*> all;
  lru_.for_each([&](Frame* f) { all.push_back(f); });
  for (Frame* f : all) {
    ORDMA_CHECK_MSG(f->pin == 0, "reset with pinned pages");
    map_.erase(f->page);
    lru_.erase(f);
    f->valid = false;
    free_.push_back(f);
  }
  hits_ = misses_ = 0;
  co_return Status::Ok();
}

}  // namespace ordma::db
