#include "db/join.h"

#include <algorithm>
#include <unordered_map>

namespace ordma::db {

sim::Task<Status> load_records(Database& db, std::uint64_t count,
                               Bytes record_size, std::uint64_t seed) {
  std::vector<std::byte> record(record_size);
  std::uint64_t x = seed;
  for (std::uint64_t k = 1; k <= count; ++k) {
    for (auto& b : record) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<std::byte>(x >> 56);
    }
    auto st = co_await db.put(k, record);
    if (!st.ok()) co_return st;
  }
  co_return co_await db.sync();
}

sim::Task<Result<JoinResult>> run_join(host::Host& host, Database& db,
                                       const std::vector<Key>& keys,
                                       JoinConfig cfg) {
  // Pre-compute the page list per key (what Berkeley DB's modified
  // prefetcher knows ahead of time). This pass warms nothing: it is done
  // before the cache reset below.
  std::unordered_map<Key, std::vector<PageNo>> page_lists;
  for (Key k : keys) {
    auto pages = co_await db.pages_for(k);
    if (!pages.ok()) co_return pages.status();
    page_lists.emplace(k, std::move(pages.value()));
  }
  auto st = co_await db.reset_cache();
  if (!st.ok()) co_return st;

  const SimTime t0 = host.engine().now();
  JoinResult out;
  std::size_t issued_ahead = 0;

  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Keep the prefetch window full; each record's pages are issued as
    // coalesced contiguous runs (overflow chains are contiguous).
    while (issued_ahead < i + cfg.window && issued_ahead < keys.size()) {
      db.pager().prefetch_list(page_lists.at(keys[issued_ahead]));
      ++issued_ahead;
    }
    auto rec = co_await db.get(keys[i]);
    if (!rec.ok()) co_return rec.status();
    ORDMA_CHECK_MSG(rec.value().size() == cfg.record_size,
                    "unexpected record size");
    // Application work: copy part of the record out of the db cache.
    if (cfg.copy_per_record > 0) {
      co_await host.copy(std::min<Bytes>(cfg.copy_per_record,
                                         rec.value().size()));
    }
    ++out.records;
    out.record_bytes += rec.value().size();
  }

  out.elapsed = host.engine().now() - t0;
  out.throughput_MBps = throughput_MBps(out.record_bytes, out.elapsed);
  co_return out;
}

}  // namespace ordma::db
