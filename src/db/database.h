// The embedded database facade (Berkeley DB stand-in): a key/value store —
// B+-tree access method over a user-level page cache over any FileClient —
// "linked into the application address space", as §5.1 describes db.
#pragma once

#include <memory>
#include <string>

#include "core/file_client.h"
#include "db/btree.h"
#include "db/pager.h"

namespace ordma::db {

class Database {
 public:
  // Create a new database file (fails if it exists).
  static sim::Task<Result<std::unique_ptr<Database>>> create(
      host::Host& host, core::FileClient& file, const std::string& path,
      PagerConfig cfg = {});
  // Open an existing database file.
  static sim::Task<Result<std::unique_ptr<Database>>> open(
      host::Host& host, core::FileClient& file, const std::string& path,
      PagerConfig cfg = {});

  sim::Task<Status> put(Key key, std::span<const std::byte> value) {
    return tree_->insert(key, value);
  }
  sim::Task<Result<std::vector<std::byte>>> get(Key key) {
    return tree_->get(key);
  }
  sim::Task<Result<bool>> contains(Key key) { return tree_->contains(key); }
  sim::Task<Result<std::vector<Key>>> keys() { return tree_->keys(); }
  sim::Task<Result<std::vector<PageNo>>> pages_for(Key key) {
    return tree_->pages_for(key);
  }

  sim::Task<Status> sync() { return pager_->flush(); }
  // Drop the page cache (cold-start a measurement).
  sim::Task<Status> reset_cache() { return pager_->reset(); }

  Pager& pager() { return *pager_; }
  BTree& tree() { return *tree_; }

 private:
  Database() = default;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BTree> tree_;
  std::uint64_t fh_ = 0;
};

inline sim::Task<Result<std::unique_ptr<Database>>> Database::create(
    host::Host& host, core::FileClient& file, const std::string& path,
    PagerConfig cfg) {
  auto created = co_await file.create(path);
  if (!created.ok()) co_return created.status();
  auto dbp = std::unique_ptr<Database>(new Database);
  dbp->fh_ = created.value().fh;
  dbp->pager_ = std::make_unique<Pager>(host, file, dbp->fh_, 0, cfg);
  dbp->tree_ = std::make_unique<BTree>(*dbp->pager_);
  auto st = co_await dbp->tree_->create();
  if (!st.ok()) co_return st;
  co_return std::move(dbp);
}

inline sim::Task<Result<std::unique_ptr<Database>>> Database::open(
    host::Host& host, core::FileClient& file, const std::string& path,
    PagerConfig cfg) {
  auto opened = co_await file.open(path);
  if (!opened.ok()) co_return opened.status();
  auto dbp = std::unique_ptr<Database>(new Database);
  dbp->fh_ = opened.value().fh;
  dbp->pager_ = std::make_unique<Pager>(host, file, dbp->fh_,
                                        opened.value().size, cfg);
  dbp->tree_ = std::make_unique<BTree>(*dbp->pager_);
  auto st = co_await dbp->tree_->open();
  if (!st.ok()) co_return st;
  co_return std::move(dbp);
}

}  // namespace ordma::db
