// User-level database page cache over a FileClient — the stand-in for
// Berkeley DB's private cache in §5.1: "maintains its own user-level cache
// of recently accessed database pages ... modified to asynchronously
// prefetch database pages when it is possible to pre-compute a set of
// required pages".
//
// Page frames live in a registered user-memory slab (so direct-read
// protocols place data straight into the DB cache); a byte mirror gives the
// B+-tree cheap structured access.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.h"
#include "common/result.h"
#include "core/file_client.h"
#include "host/host.h"
#include "sim/channel.h"
#include "sim/event.h"

namespace ordma::db {

using PageNo = std::uint32_t;
inline constexpr PageNo kInvalidPage = 0xffffffffu;

struct PagerConfig {
  Bytes page_size = KiB(8);
  std::size_t cache_pages = 128;
};

class Pager {
 public:
  Pager(host::Host& host, core::FileClient& file, std::uint64_t fh,
        Bytes file_size, PagerConfig cfg = {});
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  Bytes page_size() const { return cfg_.page_size; }
  PageNo num_pages() const { return num_pages_; }

  struct Frame : ListNode {
    PageNo page = kInvalidPage;
    int slot = -1;
    bool valid = false;
    bool dirty = false;
    int pin = 0;
    std::vector<std::byte> bytes;  // mirror of the slab slot
  };

  struct Inflight {
    explicit Inflight(sim::Engine& eng) : done(eng) {}
    sim::Event<Result<Frame*>> done;
  };

  // Fetch a page (I/O on miss). The frame stays valid while pinned.
  sim::Task<Result<Frame*>> fetch(PageNo p);
  static void pin(Frame& f) { ++f.pin; }
  static void unpin(Frame& f) {
    ORDMA_CHECK(f.pin > 0);
    --f.pin;
  }
  void mark_dirty(Frame& f) { f.dirty = true; }

  // Start an asynchronous fetch; completion is tracked so a later fetch()
  // of the same page joins the in-flight I/O instead of reissuing it.
  void prefetch(PageNo p);
  // Prefetch a page list, coalescing maximal contiguous runs of uncached
  // pages into single large reads (the pre-computed-page-list read-ahead of
  // §5.1's modified Berkeley DB; overflow chains are contiguous on disk).
  void prefetch_list(const std::vector<PageNo>& pages);
  std::size_t inflight() const { return inflight_.size(); }

  // Allocate a fresh page at the end of the file (zeroed frame, dirty).
  sim::Task<Result<Frame*>> allocate();

  // Write back all dirty pages.
  sim::Task<Status> flush();

  // Drop every (clean) cached page — used to cold-start measurements.
  sim::Task<Status> reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  sim::Task<Result<Frame*>> load(PageNo p);
  sim::Task<void> load_run(PageNo first, std::uint32_t count,
                           std::vector<std::shared_ptr<Inflight>> flights);
  sim::Task<Result<Frame*>> take_frame();
  sim::Task<Status> write_back(Frame& f);
  mem::Vaddr slot_va(int slot) const {
    return slab_ + static_cast<Bytes>(slot) * cfg_.page_size;
  }

  host::Host& host_;
  core::FileClient& file_;
  std::uint64_t fh_;
  PagerConfig cfg_;
  PageNo num_pages_;
  mem::Vaddr slab_;

  std::vector<std::unique_ptr<Frame>> frames_;
  IntrusiveList<Frame> lru_;    // valid frames, front = coldest
  IntrusiveList<Frame> free_;
  std::unordered_map<PageNo, Frame*> map_;

  std::unordered_map<PageNo, std::shared_ptr<Inflight>> inflight_;
  // Pool of staging areas for coalesced run reads (one per in-flight run).
  std::unique_ptr<sim::Channel<mem::Vaddr>> scratch_pool_;
  Bytes scratch_run_len_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ordma::db
