// B+-tree with overflow chains for large values — the access method of the
// Berkeley DB stand-in. Page layout is real marshalled bytes (the tree is
// readable after a flush/reload), fixed-width u64 keys, values of any size
// (inline when they fit, otherwise a chain of overflow pages — a 60 KB
// record occupies ~8 pages, which is what gives Fig. 5 its I/O pattern).
//
// Page formats (page size P, all integers big-endian):
//   meta (page 0):  magic u32 | root u32 | next_free u32 | height u32
//   internal:       type=1 u8 | nkeys u16 | [key u64, child u32]* | right u32
//   leaf:           type=2 u8 | nkeys u16 | next_leaf u32 |
//                   entries: key u64 | vlen u32 | (inline bytes
//                            | ovfl: first u32, pages u32)
//   overflow:       type=3 u8 | next u32 | len u16 | bytes
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "db/pager.h"

namespace ordma::db {

using Key = std::uint64_t;

class BTree {
 public:
  explicit BTree(Pager& pager) : pager_(pager) {}

  // Create a fresh tree (meta + empty root leaf).
  sim::Task<Status> create();
  // Open an existing tree (reads meta).
  sim::Task<Status> open();

  sim::Task<Status> insert(Key key, std::span<const std::byte> value);
  sim::Task<Result<std::vector<std::byte>>> get(Key key);
  sim::Task<Result<bool>> contains(Key key);

  // All pages a get(key) would touch, in access order (meta excluded).
  // Used by the join workload to pre-compute its prefetch list.
  sim::Task<Result<std::vector<PageNo>>> pages_for(Key key);

  // In-order key scan (whole tree).
  sim::Task<Result<std::vector<Key>>> keys();

  std::uint32_t height() const { return height_; }

 private:
  static constexpr std::uint32_t kMagic = 0x0DDA'F500;
  // Values longer than this spill to overflow pages.
  Bytes inline_limit() const { return pager_.page_size() / 4; }
  Bytes leaf_capacity() const { return pager_.page_size() - 16; }

  struct LeafEntry {
    Key key = 0;
    Bytes vlen = 0;
    std::vector<std::byte> inline_value;  // if vlen <= inline_limit
    PageNo ovfl_first = kInvalidPage;
    std::uint32_t ovfl_pages = 0;
  };
  struct Leaf {
    std::vector<LeafEntry> entries;
    PageNo next = kInvalidPage;
  };
  struct Internal {
    std::vector<Key> keys;        // keys.size() == children.size() - 1
    std::vector<PageNo> children;
  };

  // --- page (de)serialisation ------------------------------------------------
  static void put_u16(std::vector<std::byte>& b, std::size_t off,
                      std::uint16_t v);
  static void put_u32(std::vector<std::byte>& b, std::size_t off,
                      std::uint32_t v);
  static void put_u64(std::vector<std::byte>& b, std::size_t off,
                      std::uint64_t v);
  static std::uint16_t get_u16(const std::vector<std::byte>& b,
                               std::size_t off);
  static std::uint32_t get_u32(const std::vector<std::byte>& b,
                               std::size_t off);
  static std::uint64_t get_u64(const std::vector<std::byte>& b,
                               std::size_t off);

  void encode_leaf(const Leaf& l, std::vector<std::byte>& page) const;
  Leaf decode_leaf(const std::vector<std::byte>& page) const;
  void encode_internal(const Internal& n, std::vector<std::byte>& page) const;
  Internal decode_internal(const std::vector<std::byte>& page) const;
  Bytes leaf_bytes(const Leaf& l) const;

  sim::Task<Status> write_meta();

  // Descend to the leaf that should hold `key`; returns the path of page
  // numbers (root..leaf).
  sim::Task<Result<std::vector<PageNo>>> descend(Key key);

  // Store a large value in a fresh overflow chain.
  sim::Task<Result<std::pair<PageNo, std::uint32_t>>> write_overflow(
      std::span<const std::byte> value);
  sim::Task<Result<std::vector<std::byte>>> read_overflow(PageNo first,
                                                          std::uint32_t pages,
                                                          Bytes len);

  // Insert into a (possibly full) node chain with splits up the path.
  sim::Task<Status> insert_into_leaf(const std::vector<PageNo>& path,
                                     LeafEntry entry);

  Pager& pager_;
  PageNo root_ = kInvalidPage;
  std::uint32_t height_ = 1;
};

}  // namespace ordma::db
