// The Figure-5 application: "an application uses db to compute a simple
// equality join with 60KB records. The result of the join is a large list
// of keys, retrieved from the database file located on the server. Db
// pre-computes the list of required pages and performs read-ahead,
// maintaining a window of outstanding I/Os. To vary the computational
// requirements of the application, we increase the amount of data copied
// from the db cache into the application buffer for each record."
#pragma once

#include <vector>

#include "db/database.h"

namespace ordma::db {

struct JoinConfig {
  Bytes record_size = KiB(60);
  Bytes copy_per_record = 0;   // 0 .. 64 KiB in the paper's sweep
  std::size_t window = 8;      // outstanding prefetch I/Os
};

struct JoinResult {
  std::uint64_t records = 0;
  Bytes record_bytes = 0;      // records × record_size (the throughput basis)
  Duration elapsed{};
  double throughput_MBps = 0.0;
};

// Run the equality-join retrieval phase over `keys` (the pre-computed join
// result). Pages for upcoming records are prefetched `window` records
// ahead; each retrieved record is partially copied into the application
// buffer (a real charged memcpy of copy_per_record bytes).
sim::Task<Result<JoinResult>> run_join(host::Host& host, Database& db,
                                       const std::vector<Key>& keys,
                                       JoinConfig cfg);

// Setup helper: bulk-load `count` records of record_size deterministic
// bytes keyed 1..count, then flush.
sim::Task<Status> load_records(Database& db, std::uint64_t count,
                               Bytes record_size, std::uint64_t seed = 42);

}  // namespace ordma::db
