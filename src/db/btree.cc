#include "db/btree.h"

#include <algorithm>
#include <cstring>

namespace ordma::db {

namespace {
constexpr std::uint8_t kTypeInternal = 1;
constexpr std::uint8_t kTypeLeaf = 2;
constexpr std::uint8_t kTypeOverflow = 3;
}  // namespace

// ---------------------------------------------------------------------------
// Raw field helpers
// ---------------------------------------------------------------------------

void BTree::put_u16(std::vector<std::byte>& b, std::size_t off,
                    std::uint16_t v) {
  b[off] = static_cast<std::byte>(v >> 8);
  b[off + 1] = static_cast<std::byte>(v & 0xff);
}
void BTree::put_u32(std::vector<std::byte>& b, std::size_t off,
                    std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b[off + i] = static_cast<std::byte>((v >> (8 * (3 - i))) & 0xff);
  }
}
void BTree::put_u64(std::vector<std::byte>& b, std::size_t off,
                    std::uint64_t v) {
  put_u32(b, off, static_cast<std::uint32_t>(v >> 32));
  put_u32(b, off + 4, static_cast<std::uint32_t>(v & 0xffffffffu));
}
std::uint16_t BTree::get_u16(const std::vector<std::byte>& b,
                             std::size_t off) {
  return static_cast<std::uint16_t>((std::to_integer<unsigned>(b[off]) << 8) |
                                    std::to_integer<unsigned>(b[off + 1]));
}
std::uint32_t BTree::get_u32(const std::vector<std::byte>& b,
                             std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(b[off + i]);
  }
  return v;
}
std::uint64_t BTree::get_u64(const std::vector<std::byte>& b,
                             std::size_t off) {
  return (static_cast<std::uint64_t>(get_u32(b, off)) << 32) |
         get_u32(b, off + 4);
}

// ---------------------------------------------------------------------------
// Node (de)serialisation
// ---------------------------------------------------------------------------

Bytes BTree::leaf_bytes(const Leaf& l) const {
  Bytes n = 1 + 2 + 4;  // type, nkeys, next
  for (const auto& e : l.entries) {
    n += 8 + 4;  // key, vlen
    n += e.vlen <= inline_limit() ? e.vlen : 8;  // inline or (first,pages)
  }
  return n;
}

void BTree::encode_leaf(const Leaf& l, std::vector<std::byte>& page) const {
  std::fill(page.begin(), page.end(), std::byte{0});
  page[0] = static_cast<std::byte>(kTypeLeaf);
  put_u16(page, 1, static_cast<std::uint16_t>(l.entries.size()));
  put_u32(page, 3, l.next);
  std::size_t off = 7;
  for (const auto& e : l.entries) {
    put_u64(page, off, e.key);
    put_u32(page, off + 8, static_cast<std::uint32_t>(e.vlen));
    off += 12;
    if (e.vlen <= inline_limit()) {
      std::memcpy(page.data() + off, e.inline_value.data(), e.vlen);
      off += e.vlen;
    } else {
      put_u32(page, off, e.ovfl_first);
      put_u32(page, off + 4, e.ovfl_pages);
      off += 8;
    }
    ORDMA_CHECK_MSG(off <= page.size(), "leaf overflow during encode");
  }
}

BTree::Leaf BTree::decode_leaf(const std::vector<std::byte>& page) const {
  ORDMA_CHECK(std::to_integer<std::uint8_t>(page[0]) == kTypeLeaf);
  Leaf l;
  const std::uint16_t n = get_u16(page, 1);
  l.next = get_u32(page, 3);
  std::size_t off = 7;
  l.entries.resize(n);
  for (auto& e : l.entries) {
    e.key = get_u64(page, off);
    e.vlen = get_u32(page, off + 8);
    off += 12;
    if (e.vlen <= inline_limit()) {
      e.inline_value.assign(page.begin() + off,
                            page.begin() + off + e.vlen);
      off += e.vlen;
    } else {
      e.ovfl_first = get_u32(page, off);
      e.ovfl_pages = get_u32(page, off + 4);
      off += 8;
    }
  }
  return l;
}

void BTree::encode_internal(const Internal& nd,
                            std::vector<std::byte>& page) const {
  std::fill(page.begin(), page.end(), std::byte{0});
  page[0] = static_cast<std::byte>(kTypeInternal);
  put_u16(page, 1, static_cast<std::uint16_t>(nd.keys.size()));
  std::size_t off = 3;
  for (std::size_t i = 0; i < nd.keys.size(); ++i) {
    put_u64(page, off, nd.keys[i]);
    put_u32(page, off + 8, nd.children[i]);
    off += 12;
  }
  put_u32(page, off, nd.children.back());
  ORDMA_CHECK(off + 4 <= page.size());
}

BTree::Internal BTree::decode_internal(
    const std::vector<std::byte>& page) const {
  ORDMA_CHECK(std::to_integer<std::uint8_t>(page[0]) == kTypeInternal);
  Internal nd;
  const std::uint16_t n = get_u16(page, 1);
  std::size_t off = 3;
  nd.keys.resize(n);
  nd.children.resize(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    nd.keys[i] = get_u64(page, off);
    nd.children[i] = get_u32(page, off + 8);
    off += 12;
  }
  nd.children[n] = get_u32(page, off);
  return nd;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

sim::Task<Status> BTree::write_meta() {
  auto meta = co_await pager_.fetch(0);
  if (!meta.ok()) co_return meta.status();
  auto& b = meta.value()->bytes;
  put_u32(b, 0, kMagic);
  put_u32(b, 4, root_);
  put_u32(b, 8, pager_.num_pages());
  put_u32(b, 12, height_);
  pager_.mark_dirty(*meta.value());
  co_return Status::Ok();
}

sim::Task<Status> BTree::create() {
  // Page 0 = meta; page 1 = empty root leaf.
  auto meta = co_await pager_.allocate();
  if (!meta.ok()) co_return meta.status();
  ORDMA_CHECK_MSG(meta.value()->page == 0, "create on non-empty file");
  auto rootf = co_await pager_.allocate();
  if (!rootf.ok()) co_return rootf.status();
  root_ = rootf.value()->page;
  height_ = 1;
  Leaf empty;
  encode_leaf(empty, rootf.value()->bytes);
  pager_.mark_dirty(*rootf.value());
  co_return co_await write_meta();
}

sim::Task<Status> BTree::open() {
  auto meta = co_await pager_.fetch(0);
  if (!meta.ok()) co_return meta.status();
  const auto& b = meta.value()->bytes;
  if (get_u32(b, 0) != kMagic) co_return Status(Errc::invalid_argument);
  root_ = get_u32(b, 4);
  height_ = get_u32(b, 12);
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Descent & reads
// ---------------------------------------------------------------------------

sim::Task<Result<std::vector<PageNo>>> BTree::descend(Key key) {
  std::vector<PageNo> path;
  PageNo cur = root_;
  for (std::uint32_t level = 1; level < height_; ++level) {
    path.push_back(cur);
    auto f = co_await pager_.fetch(cur);
    if (!f.ok()) co_return f.status();
    const Internal nd = decode_internal(f.value()->bytes);
    std::size_t i = 0;
    while (i < nd.keys.size() && key >= nd.keys[i]) ++i;
    cur = nd.children[i];
  }
  path.push_back(cur);
  co_return path;
}

sim::Task<Result<std::vector<std::byte>>> BTree::read_overflow(
    PageNo first, std::uint32_t pages, Bytes len) {
  std::vector<std::byte> out;
  out.reserve(len);
  PageNo cur = first;
  for (std::uint32_t i = 0; i < pages; ++i) {
    auto f = co_await pager_.fetch(cur);
    if (!f.ok()) co_return f.status();
    const auto& b = f.value()->bytes;
    ORDMA_CHECK(std::to_integer<std::uint8_t>(b[0]) == kTypeOverflow);
    const PageNo next = get_u32(b, 1);
    const std::uint16_t n = get_u16(b, 5);
    out.insert(out.end(), b.begin() + 7, b.begin() + 7 + n);
    cur = next;
  }
  ORDMA_CHECK_MSG(out.size() == len, "overflow chain length mismatch");
  co_return out;
}

sim::Task<Result<std::vector<std::byte>>> BTree::get(Key key) {
  auto path = co_await descend(key);
  if (!path.ok()) co_return path.status();
  auto f = co_await pager_.fetch(path.value().back());
  if (!f.ok()) co_return f.status();
  const Leaf leaf = decode_leaf(f.value()->bytes);
  for (const auto& e : leaf.entries) {
    if (e.key == key) {
      if (e.vlen <= inline_limit()) co_return e.inline_value;
      co_return co_await read_overflow(e.ovfl_first, e.ovfl_pages, e.vlen);
    }
  }
  co_return Errc::not_found;
}

sim::Task<Result<bool>> BTree::contains(Key key) {
  auto path = co_await descend(key);
  if (!path.ok()) co_return path.status();
  auto f = co_await pager_.fetch(path.value().back());
  if (!f.ok()) co_return f.status();
  const Leaf leaf = decode_leaf(f.value()->bytes);
  for (const auto& e : leaf.entries) {
    if (e.key == key) co_return true;
  }
  co_return false;
}

sim::Task<Result<std::vector<PageNo>>> BTree::pages_for(Key key) {
  auto path = co_await descend(key);
  if (!path.ok()) co_return path.status();
  std::vector<PageNo> pages = path.value();
  auto f = co_await pager_.fetch(path.value().back());
  if (!f.ok()) co_return f.status();
  const Leaf leaf = decode_leaf(f.value()->bytes);
  for (const auto& e : leaf.entries) {
    if (e.key == key && e.vlen > inline_limit()) {
      // Overflow chains are allocated contiguously by write_overflow.
      for (std::uint32_t i = 0; i < e.ovfl_pages; ++i) {
        pages.push_back(e.ovfl_first + i);
      }
    }
  }
  co_return pages;
}

sim::Task<Result<std::vector<Key>>> BTree::keys() {
  // Walk down the leftmost spine, then follow leaf links.
  PageNo cur = root_;
  for (std::uint32_t level = 1; level < height_; ++level) {
    auto f = co_await pager_.fetch(cur);
    if (!f.ok()) co_return f.status();
    cur = decode_internal(f.value()->bytes).children.front();
  }
  std::vector<Key> out;
  while (cur != kInvalidPage) {
    auto f = co_await pager_.fetch(cur);
    if (!f.ok()) co_return f.status();
    const Leaf leaf = decode_leaf(f.value()->bytes);
    for (const auto& e : leaf.entries) out.push_back(e.key);
    cur = leaf.next;
  }
  co_return out;
}

// ---------------------------------------------------------------------------
// Inserts
// ---------------------------------------------------------------------------

sim::Task<Result<std::pair<PageNo, std::uint32_t>>> BTree::write_overflow(
    std::span<const std::byte> value) {
  const Bytes per_page = pager_.page_size() - 7;
  const auto pages =
      static_cast<std::uint32_t>((value.size() + per_page - 1) / per_page);
  PageNo first = kInvalidPage;
  Pager::Frame* prev = nullptr;
  Bytes off = 0;
  for (std::uint32_t i = 0; i < pages; ++i) {
    auto f = co_await pager_.allocate();
    if (!f.ok()) co_return f.status();
    auto& b = f.value()->bytes;
    std::fill(b.begin(), b.end(), std::byte{0});
    b[0] = static_cast<std::byte>(kTypeOverflow);
    put_u32(b, 1, kInvalidPage);
    const Bytes n = std::min<Bytes>(per_page, value.size() - off);
    put_u16(b, 5, static_cast<std::uint16_t>(n));
    std::memcpy(b.data() + 7, value.data() + off, n);
    pager_.mark_dirty(*f.value());
    off += n;
    if (prev) {
      put_u32(prev->bytes, 1, f.value()->page);
      pager_.mark_dirty(*prev);
    } else {
      first = f.value()->page;
    }
    prev = f.value();
    Pager::pin(*f.value());  // keep the chain resident while linking
  }
  // Unpin the chain (walk again via page numbers is unnecessary: frames may
  // have been pinned above; release in order).
  PageNo cur = first;
  for (std::uint32_t i = 0; i < pages; ++i) {
    auto f = co_await pager_.fetch(cur);
    ORDMA_CHECK(f.ok());
    Pager::unpin(*f.value());
    cur = get_u32(f.value()->bytes, 1);
  }
  co_return std::make_pair(first, pages);
}

sim::Task<Status> BTree::insert_into_leaf(const std::vector<PageNo>& path,
                                          LeafEntry entry) {
  auto leaff = co_await pager_.fetch(path.back());
  if (!leaff.ok()) co_return leaff.status();
  Leaf leaf = decode_leaf(leaff.value()->bytes);

  // Insert or replace in sorted position.
  auto it = std::lower_bound(
      leaf.entries.begin(), leaf.entries.end(), entry.key,
      [](const LeafEntry& e, Key k) { return e.key < k; });
  if (it != leaf.entries.end() && it->key == entry.key) {
    *it = std::move(entry);
  } else {
    leaf.entries.insert(it, std::move(entry));
  }

  if (leaf_bytes(leaf) <= leaf_capacity()) {
    encode_leaf(leaf, leaff.value()->bytes);
    pager_.mark_dirty(*leaff.value());
    co_return Status::Ok();
  }

  // Split the leaf.
  auto rightf = co_await pager_.allocate();
  if (!rightf.ok()) co_return rightf.status();
  Leaf right;
  const std::size_t half = leaf.entries.size() / 2;
  right.entries.assign(std::make_move_iterator(leaf.entries.begin() + half),
                       std::make_move_iterator(leaf.entries.end()));
  leaf.entries.resize(half);
  right.next = leaf.next;
  leaf.next = rightf.value()->page;
  const Key sep = right.entries.front().key;

  encode_leaf(leaf, leaff.value()->bytes);
  pager_.mark_dirty(*leaff.value());
  encode_leaf(right, rightf.value()->bytes);
  pager_.mark_dirty(*rightf.value());

  // Propagate the separator up the path.
  Key up_key = sep;
  PageNo up_child = rightf.value()->page;
  for (std::size_t depth = path.size() - 1; depth-- > 0;) {
    auto nodef = co_await pager_.fetch(path[depth]);
    if (!nodef.ok()) co_return nodef.status();
    Internal nd = decode_internal(nodef.value()->bytes);
    std::size_t i = 0;
    while (i < nd.keys.size() && up_key >= nd.keys[i]) ++i;
    nd.keys.insert(nd.keys.begin() + i, up_key);
    nd.children.insert(nd.children.begin() + i + 1, up_child);

    const Bytes need = 3 + nd.keys.size() * 12 + 4;
    if (need <= pager_.page_size()) {
      encode_internal(nd, nodef.value()->bytes);
      pager_.mark_dirty(*nodef.value());
      co_return Status::Ok();
    }
    // Split internal node.
    auto newf = co_await pager_.allocate();
    if (!newf.ok()) co_return newf.status();
    Internal rightn;
    const std::size_t mid = nd.keys.size() / 2;
    const Key promote = nd.keys[mid];
    rightn.keys.assign(nd.keys.begin() + mid + 1, nd.keys.end());
    rightn.children.assign(nd.children.begin() + mid + 1, nd.children.end());
    nd.keys.resize(mid);
    nd.children.resize(mid + 1);
    encode_internal(nd, nodef.value()->bytes);
    pager_.mark_dirty(*nodef.value());
    encode_internal(rightn, newf.value()->bytes);
    pager_.mark_dirty(*newf.value());
    up_key = promote;
    up_child = newf.value()->page;
  }

  // Split reached the root: grow the tree.
  auto newroot = co_await pager_.allocate();
  if (!newroot.ok()) co_return newroot.status();
  Internal rootn;
  rootn.keys = {up_key};
  rootn.children = {path.front(), up_child};
  encode_internal(rootn, newroot.value()->bytes);
  pager_.mark_dirty(*newroot.value());
  root_ = newroot.value()->page;
  ++height_;
  co_return co_await write_meta();
}

sim::Task<Status> BTree::insert(Key key, std::span<const std::byte> value) {
  LeafEntry entry;
  entry.key = key;
  entry.vlen = value.size();
  if (value.size() <= inline_limit()) {
    entry.inline_value.assign(value.begin(), value.end());
  } else {
    auto ovfl = co_await write_overflow(value);
    if (!ovfl.ok()) co_return ovfl.status();
    entry.ovfl_first = ovfl.value().first;
    entry.ovfl_pages = ovfl.value().second;
  }
  auto path = co_await descend(key);
  if (!path.ok()) co_return path.status();
  co_return co_await insert_into_leaf(path.value(), std::move(entry));
}

}  // namespace ordma::db
