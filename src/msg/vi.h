// VI-architecture-style user-level messaging over GM (the paper's VI-GM
// layer, §5): connected queue pairs with send/receive and RDMA, and two
// completion disciplines — polling (cheap, burns a little CPU per pickup)
// and blocking (interrupt + scheduler wakeup), whose gap is Table 2's
// 23 µs vs 53 µs round-trip.
#pragma once

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "host/host.h"
#include "net/packet.h"
#include "nic/nic.h"
#include "sim/task.h"

namespace ordma::msg {

enum class Completion { poll, block };

// A connected VI endpoint. Create pairs with ViListener::accept() on the
// passive side and vi_connect() on the active side.
class ViConnection {
 public:
  ViConnection(host::Host& host, net::NodeId peer_node,
               std::uint32_t local_port, std::uint32_t peer_port,
               Completion mode)
      : host_(host),
        nic_(host.nic()),
        peer_node_(peer_node),
        local_port_(local_port),
        peer_port_(peer_port),
        mode_(mode),
        rx_(nic_.open_port(local_port)) {}

  net::NodeId peer_node() const { return peer_node_; }
  Completion mode() const { return mode_; }
  void set_mode(Completion m) { mode_ = m; }

  // Post a message to the peer's receive queue. `trace_op` rides on the GM
  // message as trace context (obs/trace.h).
  sim::Task<void> send(net::Buffer msg, obs::OpId trace_op = 0) {
    return nic_.gm_send(peer_node_, peer_port_, 0, std::move(msg), trace_op);
  }

  // Take the next message (with its trace context); charges the
  // completion-pickup cost against the message's file op.
  sim::Task<nic::Nic::GmMessage> recv_msg() {
    auto msg = co_await rx_.recv();
    co_await charge_pickup(msg.trace_op);
    co_return msg;
  }
  sim::Task<net::Buffer> recv() {
    auto msg = co_await recv_msg();
    co_return std::move(msg.data);
  }

  // RDMA through the connection (target side never sees an event — §2.1:
  // "Only the RDMA initiator receives notification of completed events").
  sim::Task<Result<net::Buffer>> rdma_read(mem::Vaddr va, Bytes len,
                                           const crypto::Capability& cap,
                                           obs::OpId trace_op = 0) {
    auto res = co_await nic_.gm_get(peer_node_, va, len, cap, trace_op);
    co_await charge_pickup(trace_op);
    co_return res;
  }
  sim::Task<Status> rdma_write(mem::Vaddr va, net::Buffer data,
                               const crypto::Capability& cap,
                               obs::OpId trace_op = 0) {
    auto st = co_await nic_.gm_put(peer_node_, va, std::move(data), cap,
                                   /*wait_ack=*/true, trace_op);
    co_await charge_pickup(trace_op);
    co_return st;
  }

 private:
  sim::Task<void> charge_pickup(obs::OpId trace_op) {
    const auto& cm = host_.costs();
    if (mode_ == Completion::poll) {
      co_await host_.cpu_consume(cm.vi_poll_pickup, trace_op, "io/pickup");
    } else {
      co_await host_.cpu_consume(cm.cpu_interrupt + cm.vi_block_wakeup,
                                 trace_op, "io/pickup");
    }
  }

  host::Host& host_;
  nic::Nic& nic_;
  net::NodeId peer_node_;
  std::uint32_t local_port_;
  std::uint32_t peer_port_;
  Completion mode_;
  sim::Channel<nic::Nic::GmMessage>& rx_;
};

// Passive-side connection acceptor bound to a well-known port.
class ViListener {
 public:
  ViListener(host::Host& host, std::uint32_t listen_port,
             Completion mode = Completion::block)
      : host_(host),
        mode_(mode),
        listen_rx_(host.nic().open_port(listen_port)) {}

  // Wait for a connect request and build the server-side endpoint.
  sim::Task<std::unique_ptr<ViConnection>> accept() {
    auto req = co_await listen_rx_.recv();
    const std::uint32_t client_port = req.user_tag;
    const std::uint32_t server_port = host_.nic().alloc_port();
    auto conn = std::make_unique<ViConnection>(host_, req.src, server_port,
                                               client_port, mode_);
    // Tell the client which port to talk to.
    co_await host_.nic().gm_send(req.src, client_port, server_port,
                                 net::Buffer());
    co_return conn;
  }

 private:
  host::Host& host_;
  Completion mode_;
  sim::Channel<nic::Nic::GmMessage>& listen_rx_;
};

// Active-side connect: returns a ready endpoint once the listener replies.
inline sim::Task<std::unique_ptr<ViConnection>> vi_connect(
    host::Host& host, net::NodeId server, std::uint32_t listen_port,
    Completion mode = Completion::poll) {
  const std::uint32_t client_port = host.nic().alloc_port();
  auto& rx = host.nic().open_port(client_port);
  co_await host.nic().gm_send(server, listen_port, client_port,
                              net::Buffer());
  auto reply = co_await rx.recv();
  co_return std::make_unique<ViConnection>(host, server, client_port,
                                           reply.user_tag, mode);
}

}  // namespace ordma::msg
