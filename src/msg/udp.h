// UDP/IP over the Ethernet emulation — the transport under standard NFS and
// the RDDP-RPC variants (§5: "we use UDP as our transport protocol to avoid
// the higher overhead of TCP", checksum offloading and interrupt coalescing
// on).
//
// Datagrams carry a real 8-byte UDP header (ports + length) marshalled in
// front of the payload. Send/receive charge the host-CPU stack costs from
// the cost model; fragmentation and the RDDP header split happen in the NIC.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/units.h"
#include "host/host.h"
#include "net/packet.h"
#include "nic/nic.h"
#include "sim/channel.h"
#include "sim/task.h"

namespace ordma::msg {

struct UdpDatagram {
  net::NodeId src = net::kInvalidNode;
  std::uint16_t src_port = 0;
  net::Buffer data;          // payload after the UDP header
  bool rddp_placed = false;  // payload bulk was placed by the NIC
  Bytes rddp_data_len = 0;
  obs::OpId trace_op = 0;  // file-op trace context from the sender
};

class UdpStack {
 public:
  static constexpr Bytes kUdpHeader = 8;

  explicit UdpStack(host::Host& host);
  UdpStack(const UdpStack&) = delete;
  UdpStack& operator=(const UdpStack&) = delete;

  class Socket {
   public:
    Socket(UdpStack& stack, std::uint16_t port)
        : stack_(stack), port_(port), rx_(stack.host_.engine()) {}

    // Send `payload` to (dst, dst_port). If rddp_xid != 0, the bulk data at
    // [rddp_data_offset, +rddp_data_len) of the *payload* is announced for
    // RDDP placement at the receiver. `gather_send` skips the user→kernel
    // copy charge (NIC scatter/gather out of pinned pages — §2.2: "Avoiding
    // memory copies on the outgoing path is relatively easy").
    sim::Task<void> send_to(net::NodeId dst, std::uint16_t dst_port,
                            net::Buffer payload, std::uint32_t rddp_xid = 0,
                            Bytes rddp_data_offset = 0,
                            Bytes rddp_data_len = 0,
                            bool gather_send = false,
                            obs::OpId trace_op = 0);

    sim::Task<UdpDatagram> recv() {
      co_return co_await rx_.recv();
    }

    std::uint16_t port() const { return port_; }

   private:
    friend class UdpStack;
    UdpStack& stack_;
    std::uint16_t port_;
    sim::Channel<UdpDatagram> rx_;
  };

  // Bind a socket; at most one per port.
  Socket& bind(std::uint16_t port);

  host::Host& host() { return host_; }

 private:
  sim::Task<void> on_datagram(nic::Nic::EthDatagram d);

  host::Host& host_;
  nic::Nic& nic_;
  std::unordered_map<std::uint16_t, std::unique_ptr<Socket>> sockets_;
};

}  // namespace ordma::msg
