#include "msg/udp.h"

#include <array>
#include <cstring>

namespace ordma::msg {

namespace {
void put_u16(std::span<std::byte> v, std::size_t off, std::uint16_t x) {
  v[off] = static_cast<std::byte>(x >> 8);
  v[off + 1] = static_cast<std::byte>(x & 0xff);
}
std::uint16_t get_u16(std::span<const std::byte> v, std::size_t off) {
  return static_cast<std::uint16_t>(
      (std::to_integer<unsigned>(v[off]) << 8) |
      std::to_integer<unsigned>(v[off + 1]));
}
void put_u32(std::span<std::byte> v, std::size_t off, std::uint32_t x) {
  put_u16(v, off, static_cast<std::uint16_t>(x >> 16));
  put_u16(v, off + 2, static_cast<std::uint16_t>(x & 0xffff));
}
}  // namespace

UdpStack::UdpStack(host::Host& host) : host_(host), nic_(host.nic()) {
  nic_.set_eth_sink(
      [this](nic::Nic::EthDatagram d) { return on_datagram(std::move(d)); });
}

UdpStack::Socket& UdpStack::bind(std::uint16_t port) {
  auto& slot = sockets_[port];
  ORDMA_CHECK_MSG(!slot, "UDP port already bound");
  slot = std::make_unique<Socket>(*this, port);
  return *slot;
}

sim::Task<void> UdpStack::Socket::send_to(net::NodeId dst,
                                          std::uint16_t dst_port,
                                          net::Buffer payload,
                                          std::uint32_t rddp_xid,
                                          Bytes rddp_data_offset,
                                          Bytes rddp_data_len,
                                          bool gather_send,
                                          obs::OpId trace_op) {
  auto& host = stack_.host_;
  const auto& cm = host.costs();

  // Kernel entry + UDP/IP output processing, plus the fragmentation loop for
  // datagrams beyond one MTU (first fragment's cost is in udp_tx_dgram),
  // plus the user→kernel copy unless the NIC gathers from pinned pages.
  // One CPU hold split into labelled parts for attribution; total duration
  // is identical whether tracing is on or off.
  const Bytes total = kUdpHeader + payload.size();
  const auto nfrags = (total + cm.eth_mtu - 1) / cm.eth_mtu;
  Duration stack_cost = cm.udp_tx_dgram;
  if (nfrags > 1)
    stack_cost += cm.udp_tx_frag * static_cast<std::int64_t>(nfrags - 1);
  const Duration copy_cost =
      gather_send ? Duration{} : cm.copy_cost(payload.size());
  co_await host.cpu().consume_parts(
      trace_op, std::array<sim::Resource::Part, 3>{{
                    {cm.cpu_syscall, "io/syscall"},
                    {stack_cost, "pkt/udp_tx"},
                    {copy_cost, "byte/copy"},
                }});

  // Real UDP header in front of the payload (pooled buffer, filled in
  // place — no per-datagram heap allocation in steady state).
  net::Buffer dgram = net::Buffer::alloc(total);
  const auto w = dgram.mutable_view();
  put_u16(w, 0, port_);
  put_u16(w, 2, dst_port);
  put_u32(w, 4, static_cast<std::uint32_t>(total));
  const auto v = payload.view();
  if (!v.empty()) std::memcpy(w.data() + kUdpHeader, v.data(), v.size());

  // Hand to the NIC; wire serialisation proceeds without the host CPU.
  host.engine().spawn(stack_.nic_.eth_send(
      dst, std::move(dgram), rddp_xid,
      rddp_xid ? kUdpHeader + rddp_data_offset : 0, rddp_data_len,
      trace_op));
}

sim::Task<void> UdpStack::on_datagram(nic::Nic::EthDatagram d) {
  const auto& cm = host_.costs();
  // Runs inside the coalesced receive interrupt: IP input per fragment plus
  // datagram-level socket delivery.
  const Bytes total = d.data.size() + d.rddp_data_len;
  const auto nfrags = (total + cm.eth_mtu - 1) / cm.eth_mtu;
  co_await host_.cpu_consume(
      cm.udp_rx_frag * static_cast<std::int64_t>(nfrags) + cm.udp_rx_dgram,
      d.trace_op, "pkt/udp_rx");

  const auto v = d.data.view();
  if (v.size() < kUdpHeader) co_return;  // malformed; drop
  const std::uint16_t src_port = get_u16(v, 0);
  const std::uint16_t dst_port = get_u16(v, 2);

  auto it = sockets_.find(dst_port);
  if (it == sockets_.end()) co_return;  // no listener; drop

  UdpDatagram out;
  out.src = d.src;
  out.src_port = src_port;
  out.data = d.data.slice(kUdpHeader, d.data.size() - kUdpHeader);
  out.rddp_placed = d.rddp_placed;
  out.rddp_data_len = d.rddp_data_len;
  out.trace_op = d.trace_op;
  it->second->rx_.send(std::move(out));
}

}  // namespace ordma::msg
