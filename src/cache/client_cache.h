// The user-level client file cache (Addetia's DAFS client cache [1],
// §4.2.1): a fixed pool of data blocks plus "many more empty headers than
// data blocks". When a data block is reclaimed, its header lives on and can
// retain a remote memory reference to the server's copy — the ORDMA
// directory. Ideally the client has enough headers to map the entire server
// cache (the paper sizes it that way for the microbenchmarks).
//
// Also here: the open-delegation table (a delegation makes every subsequent
// open/close of the file local — §5.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/policy.h"
#include "common/units.h"
#include "crypto/capability.h"
#include "host/host.h"
#include "mem/physical_memory.h"

namespace ordma::cache {

struct BlockKey {
  std::uint64_t file = 0;
  std::uint64_t idx = 0;
  bool operator==(const BlockKey&) const = default;
};
struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return std::hash<std::uint64_t>()(k.file * 0x9E3779B97F4A7C15ull ^
                                      k.idx);
  }
};

// A piggybacked reference to a block in the server's file cache (§4.2.1):
// where it lives in the server NIC's address space and the capability that
// authorises client-initiated ORDMA against it.
struct RemoteRef {
  std::uint64_t seg_id = 0;
  mem::Vaddr va = 0;
  Bytes len = 0;
  crypto::Capability cap;
};

class ClientCache {
 public:
  struct Config {
    std::size_t data_blocks = 256;
    Bytes block_size = KiB(4);
    std::size_t max_headers = 65536;
    std::string data_policy = "lru";
    std::string ref_policy = "lru";
  };

  struct Header {
    BlockKey key;
    int data_slot = -1;          // -1: "empty" header (no cached data)
    Bytes valid = 0;             // bytes of data valid in the slot
    int pin = 0;                 // pinned blocks are not stolen
    std::optional<RemoteRef> ref;
    // Coherence bookkeeping (ORDMA write path): the server-block commit
    // version this data was fetched at (0 = untagged — always dropped by
    // an invalidation), and the dirty byte range of a write-back block.
    // Dirty blocks hold a pin (taken by mark_dirty, released by
    // clear_dirty) so cache pressure cannot steal unflushed data.
    std::uint64_t version = 0;
    // Commit version piggybacked with the ref (the newest version this
    // client has been told about for the block; tags ORDMA refills).
    std::uint64_t ref_version = 0;
    Bytes dirty_lo = 0;
    Bytes dirty_hi = 0;

    bool has_data() const { return data_slot >= 0; }
    bool dirty() const { return dirty_hi > dirty_lo; }

   private:
    friend class ClientCache;
    struct Node : PolicyNode {
      Header* owner = nullptr;
    };
    Node data_node;  // linked in data policy iff has_data()
    Node hdr_node;   // linked in header policy always
  };

  // Data blocks are carved out of the host's user address space as one
  // contiguous slab so the whole cache can be registered with the NIC once
  // and RDMA (direct reads, ORDMA) can land in cache blocks directly.
  ClientCache(host::Host& host, Config cfg);
  ClientCache(const ClientCache&) = delete;
  ClientCache& operator=(const ClientCache&) = delete;

  Bytes block_size() const { return cfg_.block_size; }
  std::size_t data_capacity() const { return cfg_.data_blocks; }
  mem::Vaddr slab_base() const { return slab_; }
  Bytes slab_len() const { return cfg_.data_blocks * cfg_.block_size; }

  // Lookup; counts a hit iff the header holds data. Touches policies.
  Header* find(BlockKey key);
  // Lookup without perturbing hit/miss counters or replacement state
  // (used by the invalidation handler, which is not an access).
  Header* peek(BlockKey key) {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second.get();
  }
  // Lookup or create the header (possibly evicting a colder header).
  Header& ensure(BlockKey key);

  // Give `h` a data block (stealing the coldest data block if the pool is
  // full; the victim's header keeps its remote ref — it becomes "empty").
  // Returns the block's address in the client's user address space.
  mem::Vaddr attach_data(Header& h, Bytes valid_len);
  mem::Vaddr block_va(const Header& h) const;

  // Convenience byte access through the host address space.
  void write_block(Header& h, std::span<const std::byte> data);
  void read_block(const Header& h, std::span<std::byte> out) const;

  // Drop a file's blocks (close without delegation, invalidation).
  void drop_file(std::uint64_t file);

  // Drop just the data copy (server-initiated invalidation): the header —
  // and its remote ref — survive, so revalidation is one ORDMA, not an
  // RPC round trip. No-op on dirty or pinned-by-dirty blocks.
  void drop_data(Header& h) {
    ORDMA_CHECK(!h.dirty());
    detach_data(h);
    h.version = 0;
  }

  // Write-back dirty tracking. mark_dirty widens the dirty range and pins
  // the block on the clean→dirty edge; clear_dirty resets it and unpins.
  void mark_dirty(Header& h, Bytes lo, Bytes hi) {
    ORDMA_CHECK(h.has_data() && lo < hi && hi <= cfg_.block_size);
    if (!h.dirty()) {
      ++h.pin;
      ++dirty_blocks_;
      h.dirty_lo = lo;
      h.dirty_hi = hi;
    } else {
      h.dirty_lo = std::min(h.dirty_lo, lo);
      h.dirty_hi = std::max(h.dirty_hi, hi);
    }
  }
  void clear_dirty(Header& h) {
    if (!h.dirty()) return;
    ORDMA_CHECK(h.pin > 0 && dirty_blocks_ > 0);
    --h.pin;
    --dirty_blocks_;
    h.dirty_lo = h.dirty_hi = 0;
  }
  std::size_t dirty_blocks() const { return dirty_blocks_; }

  // Remote-reference bookkeeping (the ORDMA directory lives in headers).
  std::size_t refs_held() const { return refs_held_; }
  void set_ref(Header& h, const RemoteRef& ref) {
    if (!h.ref) ++refs_held_;
    h.ref = ref;
  }
  void clear_ref(Header& h) {
    if (h.ref) {
      --refs_held_;
      h.ref.reset();
    }
  }

  std::uint64_t data_hits() const { return data_hits_; }
  std::uint64_t data_misses() const { return data_misses_; }
  std::size_t headers() const { return map_.size(); }

 private:
  void evict_header();
  void detach_data(Header& h);

  host::Host& host_;
  Config cfg_;
  std::unique_ptr<ReplacementPolicy> data_policy_;
  std::unique_ptr<ReplacementPolicy> hdr_policy_;
  std::unordered_map<BlockKey, std::unique_ptr<Header>, BlockKeyHash> map_;
  mem::Vaddr slab_ = 0;
  std::vector<int> free_slots_;
  std::size_t refs_held_ = 0;
  std::size_t dirty_blocks_ = 0;
  std::uint64_t data_hits_ = 0;
  std::uint64_t data_misses_ = 0;
};

class DelegationTable {
 public:
  bool has(std::uint64_t file) const { return files_.count(file) != 0; }
  void grant(std::uint64_t file) { files_.insert(file); }
  void drop(std::uint64_t file) { files_.erase(file); }
  std::size_t size() const { return files_.size(); }

 private:
  std::unordered_set<std::uint64_t> files_;
};

}  // namespace ordma::cache
