#include "cache/client_cache.h"

namespace ordma::cache {

ClientCache::ClientCache(host::Host& host, Config cfg)
    : host_(host),
      cfg_(cfg),
      data_policy_(make_policy(cfg.data_policy, cfg.data_blocks)),
      hdr_policy_(make_policy(cfg.ref_policy, cfg.max_headers)) {
  ORDMA_CHECK(cfg_.max_headers >= cfg_.data_blocks);
  slab_ = host_.map_new(host_.user_as(), slab_len());
  free_slots_.reserve(cfg_.data_blocks);
  for (int i = static_cast<int>(cfg_.data_blocks) - 1; i >= 0; --i) {
    free_slots_.push_back(i);
  }
}

ClientCache::Header* ClientCache::find(BlockKey key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++data_misses_;
    return nullptr;
  }
  Header& h = *it->second;
  hdr_policy_->touch(&h.hdr_node);
  if (h.has_data()) {
    ++data_hits_;
    data_policy_->touch(&h.data_node);
  } else {
    ++data_misses_;
  }
  return &h;
}

void ClientCache::evict_header() {
  Header* victim_ptr = nullptr;
  for (std::size_t tries = 0; tries <= map_.size(); ++tries) {
    auto* node = static_cast<Header::Node*>(hdr_policy_->victim());
    ORDMA_CHECK_MSG(node, "header table full of unevictable headers");
    if (node->owner->pin == 0) {
      victim_ptr = node->owner;
      break;
    }
    hdr_policy_->touch(node);
  }
  ORDMA_CHECK_MSG(victim_ptr, "all headers pinned");
  Header& victim = *victim_ptr;
  detach_data(victim);
  if (victim.ref) --refs_held_;
  hdr_policy_->erase(&victim.hdr_node);
  map_.erase(victim.key);
}

ClientCache::Header& ClientCache::ensure(BlockKey key) {
  if (auto it = map_.find(key); it != map_.end()) {
    hdr_policy_->touch(&it->second->hdr_node);
    return *it->second;
  }
  if (map_.size() >= cfg_.max_headers) evict_header();
  auto h = std::make_unique<Header>();
  h->key = key;
  h->data_node.owner = h.get();
  h->hdr_node.owner = h.get();
  // Stable identity for ghost-list policies (ARC history outlives headers).
  h->data_node.key = h->hdr_node.key = BlockKeyHash{}(key);
  hdr_policy_->insert(&h->hdr_node);
  Header& ref = *h;
  map_.emplace(key, std::move(h));
  return ref;
}

void ClientCache::detach_data(Header& h) {
  if (!h.has_data()) return;
  data_policy_->erase(&h.data_node);
  free_slots_.push_back(h.data_slot);
  h.data_slot = -1;
  h.valid = 0;
  h.version = 0;  // version tags the data copy, not the header
}

mem::Vaddr ClientCache::attach_data(Header& h, Bytes valid_len) {
  ORDMA_CHECK(valid_len <= cfg_.block_size);
  if (!h.has_data()) {
    if (free_slots_.empty()) {
      // Steal the coldest unpinned data block; its header survives, keeping
      // any remote ref ("references are allowed to live in empty headers").
      // Pinned (in-flight) victims are rotated to MRU and skipped.
      Header* victim = nullptr;
      for (std::size_t tries = 0; tries <= cfg_.data_blocks; ++tries) {
        auto* node = static_cast<Header::Node*>(data_policy_->victim());
        ORDMA_CHECK_MSG(node, "no evictable data block");
        if (node->owner->pin == 0) {
          victim = node->owner;
          break;
        }
        data_policy_->touch(node);
      }
      ORDMA_CHECK_MSG(victim, "all data blocks pinned");
      detach_data(*victim);
    }
    h.data_slot = free_slots_.back();
    free_slots_.pop_back();
    data_policy_->insert(&h.data_node);
  } else {
    data_policy_->touch(&h.data_node);
  }
  h.valid = valid_len;
  return block_va(h);
}

mem::Vaddr ClientCache::block_va(const Header& h) const {
  ORDMA_CHECK(h.has_data());
  return slab_ + static_cast<Bytes>(h.data_slot) * cfg_.block_size;
}

void ClientCache::write_block(Header& h, std::span<const std::byte> data) {
  ORDMA_CHECK(data.size() <= cfg_.block_size);
  ORDMA_CHECK(host_.user_as().write(block_va(h), data).ok());
}

void ClientCache::read_block(const Header& h,
                             std::span<std::byte> out) const {
  ORDMA_CHECK(out.size() <= cfg_.block_size);
  ORDMA_CHECK(host_.user_as().read(block_va(h), out).ok());
}

void ClientCache::drop_file(std::uint64_t file) {
  std::vector<Header*> victims;
  for (auto& [key, h] : map_) {
    if (key.file == file) victims.push_back(h.get());
  }
  for (Header* h : victims) {
    detach_data(*h);
    if (h->ref) --refs_held_;
    hdr_policy_->erase(&h->hdr_node);
    map_.erase(h->key);
  }
}

}  // namespace ordma::cache
