// Replacement policies for the client cache and the ORDMA reference
// directory. The paper uses LRU for both and suggests the Multi-Queue
// algorithm (Zhou et al., USENIX '01) would fit the directory better
// (§4.2); we implement both, plus a ghost-list ARC (Megiddo & Modha,
// FAST '03) that adapts its recency/frequency split online, and compare
// them in an ablation bench.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/intrusive_list.h"

namespace ordma::cache {

struct PolicyNode : ListNode {
  std::uint64_t freq = 0;       // MQ: access count
  std::uint64_t expire = 0;     // MQ: logical expiry time
  std::uint8_t queue = 0;       // MQ: queue index; ARC: resident list tag
  // Stable identity of the cached entry (the cache sets it to a hash of
  // the block key). ARC keys its ghost lists on this, so history survives
  // the node itself being erased and re-inserted.
  std::uint64_t key = 0;
};

// Hot/cold ordering over intrusive nodes. All operations O(1) except MQ's
// occasional demotion scan (amortised O(1)).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual void insert(PolicyNode* n) = 0;
  virtual void touch(PolicyNode* n) = 0;
  virtual void erase(PolicyNode* n) = 0;
  // Coldest node (not removed); nullptr if empty.
  virtual PolicyNode* victim() = 0;
  virtual const char* name() const = 0;
};

class LruPolicy final : public ReplacementPolicy {
 public:
  void insert(PolicyNode* n) override { list_.push_back(n); }
  void touch(PolicyNode* n) override { list_.touch(n); }
  void erase(PolicyNode* n) override { list_.erase(n); }
  PolicyNode* victim() override { return list_.front(); }
  const char* name() const override { return "lru"; }

 private:
  IntrusiveList<PolicyNode> list_;
};

// Multi-Queue: m LRU queues; a node with access frequency f lives in queue
// min(log2(f), m-1). Nodes idle longer than `lifetime` accesses are demoted
// one level. Victims come from the head of the lowest non-empty queue.
class MultiQueuePolicy final : public ReplacementPolicy {
 public:
  explicit MultiQueuePolicy(std::size_t num_queues = 8,
                            std::uint64_t lifetime = 256)
      : queues_(num_queues), lifetime_(lifetime) {}

  void insert(PolicyNode* n) override {
    n->freq = 1;
    place(n);
  }

  void touch(PolicyNode* n) override {
    ++now_;
    queues_[n->queue].erase(n);
    ++n->freq;
    place(n);
    demote_expired();
  }

  void erase(PolicyNode* n) override { queues_[n->queue].erase(n); }

  PolicyNode* victim() override {
    demote_expired();
    for (auto& q : queues_) {
      if (auto* n = q.front()) return n;
    }
    return nullptr;
  }

  const char* name() const override { return "multi-queue"; }

 private:
  static std::uint8_t level_of(std::uint64_t freq, std::size_t m) {
    std::uint8_t l = 0;
    while ((freq >>= 1) != 0 && static_cast<std::size_t>(l) + 1 < m) ++l;
    return l;
  }

  void place(PolicyNode* n) {
    n->queue = level_of(n->freq, queues_.size());
    n->expire = now_ + lifetime_;
    queues_[n->queue].push_back(n);
  }

  void demote_expired() {
    // Amortised: at most one demotion per touch.
    for (std::size_t q = queues_.size(); q-- > 1;) {
      PolicyNode* head = queues_[q].front();
      if (head && head->expire < now_) {
        queues_[q].erase(head);
        head->queue = static_cast<std::uint8_t>(q - 1);
        head->expire = now_ + lifetime_;
        queues_[q - 1].push_back(head);
        return;
      }
    }
  }

  std::vector<IntrusiveList<PolicyNode>> queues_;
  std::uint64_t lifetime_;
  std::uint64_t now_ = 0;
};

// Adaptive Replacement Cache over intrusive nodes. Residents live on two
// LRU lists — T1 (seen once, recency) and T2 (seen twice+, frequency) —
// and erased entries leave a ghost (key only) on the matching history
// list B1/B2. A miss whose key hits a ghost is promoted straight to T2
// and moves the target size `p` of T1: a B1 hit means recency was evicted
// too eagerly (grow p), a B2 hit the reverse. Invariants (c = capacity):
// |T1|+|B1| <= c and |T1|+|T2|+|B1|+|B2| <= 2c, p in [0, c].
class ArcPolicy final : public ReplacementPolicy {
 public:
  explicit ArcPolicy(std::size_t capacity)
      : c_(capacity == 0 ? 1 : capacity) {}

  void insert(PolicyNode* n) override {
    if (auto it = ghosts_.find(n->key); it != ghosts_.end()) {
      // Ghost hit: adapt toward the history list that hit, resurrect the
      // entry with its frequency standing (straight into T2).
      adapt(it->second.from_t2);
      (it->second.from_t2 ? b2_ : b1_).erase(it->second.pos);
      ghosts_.erase(it);
      n->queue = kT2;
      t2_.push_back(n);
      ++t2_size_;
    } else {
      n->queue = kT1;
      t1_.push_back(n);
      ++t1_size_;
    }
  }

  void touch(PolicyNode* n) override {
    // Any hit on a resident promotes to T2 MRU (a T1 hit is the second
    // access; a T2 hit refreshes recency within the frequency list).
    if (n->queue == kT2) {
      t2_.touch(n);
      return;
    }
    t1_.erase(n);
    --t1_size_;
    n->queue = kT2;
    t2_.push_back(n);
    ++t2_size_;
  }

  void erase(PolicyNode* n) override {
    if (n->queue == kT2) {
      t2_.erase(n);
      --t2_size_;
    } else {
      t1_.erase(n);
      --t1_size_;
    }
    remember(n->key, /*from_t2=*/n->queue == kT2);
  }

  PolicyNode* victim() override {
    if (t1_size_ == 0 && t2_size_ == 0) return nullptr;
    if (t2_size_ == 0) return t1_.front();
    if (t1_size_ == 0) return t2_.front();
    // Classic ARC replacement: shrink T1 while it exceeds its target p.
    return t1_size_ > p_ ? t1_.front() : t2_.front();
  }

  const char* name() const override { return "arc"; }

  // Introspection (tests, debugging).
  std::size_t t1_size() const { return t1_size_; }
  std::size_t t2_size() const { return t2_size_; }
  std::size_t b1_size() const { return b1_.size(); }
  std::size_t b2_size() const { return b2_.size(); }
  std::size_t target_t1() const { return p_; }
  std::size_t capacity() const { return c_; }

 private:
  static constexpr std::uint8_t kT1 = 0;
  static constexpr std::uint8_t kT2 = 1;

  struct Ghost {
    std::uint64_t key = 0;
    bool from_t2 = false;
  };
  struct GhostRef {
    std::list<Ghost>::iterator pos;
    bool from_t2 = false;
  };

  void adapt(bool hit_in_b2) {
    if (hit_in_b2) {
      const std::size_t delta =
          b2_.empty() ? 1 : std::max<std::size_t>(1, b1_.size() / b2_.size());
      p_ = p_ > delta ? p_ - delta : 0;
    } else {
      const std::size_t delta =
          b1_.empty() ? 1 : std::max<std::size_t>(1, b2_.size() / b1_.size());
      p_ = std::min(c_, p_ + delta);
    }
  }

  void remember(std::uint64_t key, bool from_t2) {
    if (auto it = ghosts_.find(key); it != ghosts_.end()) {
      (it->second.from_t2 ? b2_ : b1_).erase(it->second.pos);
      ghosts_.erase(it);
    }
    auto& list = from_t2 ? b2_ : b1_;
    list.push_back(Ghost{key, from_t2});
    ghosts_.emplace(key, GhostRef{std::prev(list.end()), from_t2});
    // Enforce |T1|+|B1| <= c, then the 2c total, dropping history LRU-first.
    while (!b1_.empty() && t1_size_ + b1_.size() > c_) forget(b1_);
    while (t1_size_ + t2_size_ + b1_.size() + b2_.size() > 2 * c_) {
      forget(b2_.empty() ? b1_ : b2_);
    }
  }

  void forget(std::list<Ghost>& list) {
    ORDMA_CHECK(!list.empty());
    ghosts_.erase(list.front().key);
    list.pop_front();
  }

  std::size_t c_;
  std::size_t p_ = 0;  // target size of T1, adapted online
  IntrusiveList<PolicyNode> t1_;
  IntrusiveList<PolicyNode> t2_;
  std::size_t t1_size_ = 0;
  std::size_t t2_size_ = 0;
  std::list<Ghost> b1_;  // ghosts of T1 evictions (front = oldest)
  std::list<Ghost> b2_;  // ghosts of T2 evictions
  std::unordered_map<std::uint64_t, GhostRef> ghosts_;
};

// `capacity` is the resident-entry budget the policy manages (data blocks
// or header slots); only ARC uses it (ghost-list sizing).
inline std::unique_ptr<ReplacementPolicy> make_policy(
    const std::string& name, std::size_t capacity) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "mq") return std::make_unique<MultiQueuePolicy>();
  if (name == "arc") return std::make_unique<ArcPolicy>(capacity);
  // A config typo must be a loud startup error, not a silent LRU.
  std::fprintf(stderr,
               "fatal: unknown replacement policy \"%s\""
               " (valid: lru, mq, arc)\n",
               name.c_str());
  ORDMA_CHECK_MSG(false, "unknown replacement policy");
}

}  // namespace ordma::cache
