// Replacement policies for the client cache and the ORDMA reference
// directory. The paper uses LRU for both and suggests the Multi-Queue
// algorithm (Zhou et al., USENIX '01) would fit the directory better
// (§4.2); we implement both and compare them in an ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/intrusive_list.h"

namespace ordma::cache {

struct PolicyNode : ListNode {
  std::uint64_t freq = 0;       // MQ: access count
  std::uint64_t expire = 0;     // MQ: logical expiry time
  std::uint8_t queue = 0;       // MQ: current queue index
};

// Hot/cold ordering over intrusive nodes. All operations O(1) except MQ's
// occasional demotion scan (amortised O(1)).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual void insert(PolicyNode* n) = 0;
  virtual void touch(PolicyNode* n) = 0;
  virtual void erase(PolicyNode* n) = 0;
  // Coldest node (not removed); nullptr if empty.
  virtual PolicyNode* victim() = 0;
  virtual const char* name() const = 0;
};

class LruPolicy final : public ReplacementPolicy {
 public:
  void insert(PolicyNode* n) override { list_.push_back(n); }
  void touch(PolicyNode* n) override { list_.touch(n); }
  void erase(PolicyNode* n) override { list_.erase(n); }
  PolicyNode* victim() override { return list_.front(); }
  const char* name() const override { return "lru"; }

 private:
  IntrusiveList<PolicyNode> list_;
};

// Multi-Queue: m LRU queues; a node with access frequency f lives in queue
// min(log2(f), m-1). Nodes idle longer than `lifetime` accesses are demoted
// one level. Victims come from the head of the lowest non-empty queue.
class MultiQueuePolicy final : public ReplacementPolicy {
 public:
  explicit MultiQueuePolicy(std::size_t num_queues = 8,
                            std::uint64_t lifetime = 256)
      : queues_(num_queues), lifetime_(lifetime) {}

  void insert(PolicyNode* n) override {
    n->freq = 1;
    place(n);
  }

  void touch(PolicyNode* n) override {
    ++now_;
    queues_[n->queue].erase(n);
    ++n->freq;
    place(n);
    demote_expired();
  }

  void erase(PolicyNode* n) override { queues_[n->queue].erase(n); }

  PolicyNode* victim() override {
    demote_expired();
    for (auto& q : queues_) {
      if (auto* n = q.front()) return n;
    }
    return nullptr;
  }

  const char* name() const override { return "multi-queue"; }

 private:
  static std::uint8_t level_of(std::uint64_t freq, std::size_t m) {
    std::uint8_t l = 0;
    while ((freq >>= 1) != 0 && l + 1 < m) ++l;
    return l;
  }

  void place(PolicyNode* n) {
    n->queue = level_of(n->freq, queues_.size());
    n->expire = now_ + lifetime_;
    queues_[n->queue].push_back(n);
  }

  void demote_expired() {
    // Amortised: at most one demotion per touch.
    for (std::size_t q = queues_.size(); q-- > 1;) {
      PolicyNode* head = queues_[q].front();
      if (head && head->expire < now_) {
        queues_[q].erase(head);
        head->queue = static_cast<std::uint8_t>(q - 1);
        head->expire = now_ + lifetime_;
        queues_[q - 1].push_back(head);
        return;
      }
    }
  }

  std::vector<IntrusiveList<PolicyNode>> queues_;
  std::uint64_t lifetime_;
  std::uint64_t now_ = 0;
};

inline std::unique_ptr<ReplacementPolicy> make_policy(
    const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "mq") return std::make_unique<MultiQueuePolicy>();
  ORDMA_CHECK_MSG(false, "unknown replacement policy");
}

}  // namespace ordma::cache
