// Capabilities protecting exported memory segments (paper §4, "Ensuring
// safety").
//
// Each exported segment gets a capability: a keyed MAC over (segment id,
// base, length, permissions, generation). The server NIC recomputes and
// compares the MAC on every ORDMA request. Revocation bumps the generation
// recorded in the TPT entry, instantly invalidating all outstanding
// capabilities for the segment without tracking clients.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/siphash.h"
#include "mem/physical_memory.h"

namespace ordma::crypto {

enum class SegPerm : std::uint8_t {
  read = 1,
  write = 2,
  read_write = 3,
};

constexpr bool allows(SegPerm have, SegPerm want) {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

// What the client holds and sends back with every ORDMA (§4): enough to name
// the segment plus the MAC proving the server NIC granted it.
struct Capability {
  std::uint64_t segment_id = 0;
  mem::Vaddr base = 0;       // in the exporter's NIC-visible address space
  Bytes length = 0;
  SegPerm perm = SegPerm::read;
  std::uint32_t generation = 0;
  std::uint64_t mac = 0;

  friend bool operator==(const Capability&, const Capability&) = default;
};

// Held by the exporting NIC. Mints and verifies capabilities with a secret
// key that never leaves the NIC.
class CapabilityAuthority {
 public:
  explicit CapabilityAuthority(SipKey key) : key_(key) {}

  Capability mint(std::uint64_t segment_id, mem::Vaddr base, Bytes length,
                  SegPerm perm, std::uint32_t generation) const;

  // True iff the MAC is genuine for the named segment *and* the generation
  // matches the current one (revocation check).
  bool verify(const Capability& cap, std::uint32_t current_generation) const;

 private:
  std::uint64_t compute_mac(const Capability& cap) const;
  SipKey key_;
};

}  // namespace ordma::crypto
