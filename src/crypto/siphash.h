// SipHash-2-4 — a keyed MAC, implemented from the reference description.
//
// The paper's ORDMA safety story (§4) protects each exported memory segment
// with "a capability, which is a keyed message authentication code (MAC)
// computed and stored at the server TPT entry". The paper's prototype left
// capabilities unimplemented; we implement them with SipHash-2-4, which is
// small enough to be plausible for NIC firmware.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace ordma::crypto {

struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  friend bool operator==(const SipKey&, const SipKey&) = default;
};

// 64-bit SipHash-2-4 of `data` under `key`.
std::uint64_t siphash24(const SipKey& key, std::span<const std::byte> data);

}  // namespace ordma::crypto
