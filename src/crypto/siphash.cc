#include "crypto/siphash.h"

#include <cstring>

namespace ordma::crypto {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

inline std::uint64_t load_le64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian host assumed (x86/ARM targets)
}

}  // namespace

std::uint64_t siphash24(const SipKey& key, std::span<const std::byte> data) {
  std::uint64_t v0 = 0x736f6d6570736575ull ^ key.k0;
  std::uint64_t v1 = 0x646f72616e646f6dull ^ key.k1;
  std::uint64_t v2 = 0x6c7967656e657261ull ^ key.k0;
  std::uint64_t v3 = 0x7465646279746573ull ^ key.k1;

  const std::size_t n = data.size();
  const std::size_t full = n / 8;
  for (std::size_t i = 0; i < full; ++i) {
    const std::uint64_t m = load_le64(data.data() + i * 8);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  const std::size_t left = n & 7;
  for (std::size_t i = 0; i < left; ++i) {
    last |= static_cast<std::uint64_t>(data[full * 8 + i]) << (8 * i);
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace ordma::crypto
