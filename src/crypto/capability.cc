#include "crypto/capability.h"

#include <cstring>

namespace ordma::crypto {

std::uint64_t CapabilityAuthority::compute_mac(const Capability& cap) const {
  std::byte buf[8 + 8 + 8 + 1 + 4];
  std::size_t off = 0;
  auto put = [&](const void* p, std::size_t n) {
    std::memcpy(buf + off, p, n);
    off += n;
  };
  put(&cap.segment_id, 8);
  put(&cap.base, 8);
  put(&cap.length, 8);
  put(&cap.perm, 1);
  put(&cap.generation, 4);
  return siphash24(key_, std::span<const std::byte>(buf, off));
}

Capability CapabilityAuthority::mint(std::uint64_t segment_id,
                                     mem::Vaddr base, Bytes length,
                                     SegPerm perm,
                                     std::uint32_t generation) const {
  Capability cap;
  cap.segment_id = segment_id;
  cap.base = base;
  cap.length = length;
  cap.perm = perm;
  cap.generation = generation;
  cap.mac = compute_mac(cap);
  return cap;
}

bool CapabilityAuthority::verify(const Capability& cap,
                                 std::uint32_t current_generation) const {
  if (cap.generation != current_generation) return false;  // revoked
  return compute_mac(cap) == cap.mac;
}

}  // namespace ordma::crypto
